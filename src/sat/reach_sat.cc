#include "src/sat/reach_sat.h"

#include <map>

#include "src/sat/compiled_dtd.h"
#include "src/xml/generator.h"

namespace xpathsat {

namespace {

// True iff p lies in X(↓,↓*,∪).
bool InFragment(const PathExpr& p) {
  switch (p.kind) {
    case PathKind::kEmpty:
    case PathKind::kLabel:
    case PathKind::kChildAny:
    case PathKind::kDescOrSelf:
      return true;
    case PathKind::kSeq:
    case PathKind::kUnion:
      return InFragment(*p.lhs) && InFragment(*p.rhs);
    default:
      return false;
  }
}

using ReachTable = std::map<const PathExpr*, std::map<std::string, std::set<std::string>>>;

// The per-query DP over a (possibly shared, immutable) label graph. All
// mutable state is solver-local so concurrent solvers can share one graph.
class ReachSolver {
 public:
  ReachSolver(const PathExpr& p, const Dtd& dtd, const LabelGraph& graph,
              const std::map<std::string, long long>* min_sizes)
      : p_(p), dtd_(dtd), graph_(graph), min_sizes_(min_sizes) {}

  SatDecision Solve(bool build_witness) {
    if (!graph_.terminating.count(dtd_.root())) {
      return SatDecision::Unsat("root element type is nonterminating");
    }
    const std::set<std::string>& res = Reach(&p_, dtd_.root());
    if (res.empty()) return SatDecision::Unsat("reach(p, r) is empty");
    if (!build_witness) {
      return SatDecision::SatNoWitness("Thm 4.1 reach DP (witness skipped)");
    }
    // Build Tree(p, D): realize a path to some B in reach(p, r).
    const std::string& target = *res.begin();
    std::vector<std::string> chain;
    BuildPath(&p_, dtd_.root(), target, &chain);
    XmlTree tree = RealizeChain(chain);
    return SatDecision::Sat(std::move(tree), "Thm 4.1 reach DP");
  }

 private:
  const std::set<std::string>& Reach(const PathExpr* p, const std::string& a) {
    auto& per_type = table_[p];
    auto it = per_type.find(a);
    if (it != per_type.end()) return it->second;
    std::set<std::string> r;
    switch (p->kind) {
      case PathKind::kEmpty:
        r = {a};
        break;
      case PathKind::kLabel:
        if (graph_.Edges(a).count(p->label)) r = {p->label};
        break;
      case PathKind::kChildAny:
        r = graph_.Edges(a);
        break;
      case PathKind::kDescOrSelf:
        r = graph_.Closure(a);
        break;
      case PathKind::kUnion: {
        r = Reach(p->lhs.get(), a);
        const auto& r2 = Reach(p->rhs.get(), a);
        r.insert(r2.begin(), r2.end());
        break;
      }
      case PathKind::kSeq: {
        for (const auto& b : Reach(p->lhs.get(), a)) {
          const auto& r2 = Reach(p->rhs.get(), b);
          r.insert(r2.begin(), r2.end());
        }
        break;
      }
      default:
        break;
    }
    return per_type[a] = std::move(r);
  }

  // path(p, A, B) of the Thm 4.1 proof: labels of a chain from A to B.
  void BuildPath(const PathExpr* p, const std::string& a, const std::string& b,
                 std::vector<std::string>* out) {
    switch (p->kind) {
      case PathKind::kEmpty:
        return;  // a == b
      case PathKind::kLabel:
      case PathKind::kChildAny:
        out->push_back(b);
        return;
      case PathKind::kDescOrSelf: {
        // Shortest DTD-graph path from a to b (possibly empty when a == b).
        if (a == b) return;
        std::map<std::string, std::string> pred;
        std::vector<std::string> queue = {a};
        pred[a] = a;
        for (size_t i = 0; i < queue.size(); ++i) {
          std::string cur = queue[i];
          if (cur == b) break;
          for (const auto& c : graph_.Edges(cur)) {
            if (!pred.count(c)) {
              pred[c] = cur;
              queue.push_back(c);
            }
          }
        }
        std::vector<std::string> rev;
        for (std::string cur = b; cur != a; cur = pred[cur]) rev.push_back(cur);
        out->insert(out->end(), rev.rbegin(), rev.rend());
        return;
      }
      case PathKind::kUnion: {
        if (Reach(p->lhs.get(), a).count(b)) {
          BuildPath(p->lhs.get(), a, b, out);
        } else {
          BuildPath(p->rhs.get(), a, b, out);
        }
        return;
      }
      case PathKind::kSeq: {
        for (const auto& c : Reach(p->lhs.get(), a)) {
          if (Reach(p->rhs.get(), c).count(b)) {
            BuildPath(p->lhs.get(), a, c, out);
            BuildPath(p->rhs.get(), c, b, out);
            return;
          }
        }
        return;
      }
      default:
        return;
    }
  }

  // Realizes the chain below the root and completes to a conforming tree.
  XmlTree RealizeChain(const std::vector<std::string>& chain) {
    std::map<std::string, long long> local_sizes;
    if (min_sizes_ == nullptr) local_sizes = MinimalExpansionSizes(dtd_);
    const std::map<std::string, long long>& sizes =
        min_sizes_ ? *min_sizes_ : local_sizes;
    XmlTree tree;
    NodeId cur = tree.CreateRoot(dtd_.root());
    std::vector<NodeId> pending;  // nodes needing minimal expansion
    for (const auto& next : chain) {
      for (const auto& a : dtd_.Attrs(tree.label(cur))) {
        tree.SetAttr(cur, a, "0");
      }
      std::vector<std::string> word;
      int tpos = 0;
      if (!MinimalWordContaining(dtd_.Production(tree.label(cur)), next, sizes,
                                 &word, &tpos)) {
        break;  // unreachable by construction; keep the tree well formed
      }
      NodeId next_node = kNullNode;
      for (size_t i = 0; i < word.size(); ++i) {
        NodeId c = tree.AddChild(cur, word[i]);
        if (static_cast<int>(i) == tpos) {
          next_node = c;
        } else {
          pending.push_back(c);
        }
      }
      cur = next_node;
    }
    pending.push_back(cur);
    for (NodeId n : pending) ExpandMinimally(dtd_, &tree, n);
    return tree;
  }

  const PathExpr& p_;
  const Dtd& dtd_;
  const LabelGraph& graph_;
  const std::map<std::string, long long>* min_sizes_;
  ReachTable table_;
};

Result<SatDecision> FragmentError() {
  return Result<SatDecision>::Error(
      "query outside X(down,ds,union): qualifiers/upward/sibling axes not "
      "supported by the Thm 4.1 procedure");
}

}  // namespace

Result<SatDecision> ReachSat(const PathExpr& p, const Dtd& dtd,
                             bool build_witness) {
  if (!InFragment(p)) return FragmentError();  // before the O(|D|²) setup
  LabelGraph graph = LabelGraph::Build(dtd);
  return ReachSolver(p, dtd, graph, nullptr).Solve(build_witness);
}

Result<SatDecision> ReachSat(const PathExpr& p, const CompiledDtd& compiled,
                             bool build_witness) {
  if (!InFragment(p)) return FragmentError();
  return ReachSolver(p, compiled.dtd, compiled.graph, &compiled.min_sizes)
      .Solve(build_witness);
}

}  // namespace xpathsat
