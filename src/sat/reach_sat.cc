#include "src/sat/reach_sat.h"

#include <functional>
#include <map>

#include "src/xml/generator.h"
#include "src/xpath/evaluator.h"

namespace xpathsat {

namespace {

// True iff p lies in X(↓,↓*,∪).
bool InFragment(const PathExpr& p) {
  switch (p.kind) {
    case PathKind::kEmpty:
    case PathKind::kLabel:
    case PathKind::kChildAny:
    case PathKind::kDescOrSelf:
      return true;
    case PathKind::kSeq:
    case PathKind::kUnion:
      return InFragment(*p.lhs) && InFragment(*p.rhs);
    default:
      return false;
  }
}

// Does L(re) contain a word with an occurrence of `target` in which every
// symbol is terminating?
bool HasWordContaining(const Regex& re, const std::string& target,
                       const std::set<std::string>& term) {
  std::function<bool(const Regex&)> usable = [&](const Regex& r) -> bool {
    switch (r.kind()) {
      case Regex::Kind::kEpsilon:
        return true;
      case Regex::Kind::kSymbol:
        return term.count(r.symbol()) > 0;
      case Regex::Kind::kConcat: {
        for (const Regex& c : r.children()) {
          if (!usable(c)) return false;
        }
        return true;
      }
      case Regex::Kind::kUnion: {
        for (const Regex& c : r.children()) {
          if (usable(c)) return true;
        }
        return false;
      }
      case Regex::Kind::kStar:
        return true;
    }
    return false;
  };
  std::function<bool(const Regex&)> with = [&](const Regex& r) -> bool {
    switch (r.kind()) {
      case Regex::Kind::kEpsilon:
        return false;
      case Regex::Kind::kSymbol:
        return r.symbol() == target && term.count(target) > 0;
      case Regex::Kind::kConcat: {
        for (size_t i = 0; i < r.children().size(); ++i) {
          if (!with(r.children()[i])) continue;
          bool rest_ok = true;
          for (size_t j = 0; j < r.children().size(); ++j) {
            if (j != i && !usable(r.children()[j])) {
              rest_ok = false;
              break;
            }
          }
          if (rest_ok) return true;
        }
        return false;
      }
      case Regex::Kind::kUnion: {
        for (const Regex& c : r.children()) {
          if (with(c)) return true;
        }
        return false;
      }
      case Regex::Kind::kStar:
        return with(r.children()[0]);
    }
    return false;
  };
  return with(re);
}

using ReachTable = std::map<const PathExpr*, std::map<std::string, std::set<std::string>>>;

class ReachSolver {
 public:
  ReachSolver(const PathExpr& p, const Dtd& dtd) : p_(p), dtd_(dtd) {
    term_ = dtd.TerminatingTypes();
    // DTD-graph edges restricted to realizable children.
    for (const auto& t : dtd.types()) {
      if (!term_.count(t.name)) continue;
      std::set<std::string> syms;
      t.content.CollectSymbols(&syms);
      for (const auto& b : syms) {
        if (HasWordContaining(t.content, b, term_)) edges_[t.name].insert(b);
      }
    }
    // Reflexive-transitive closure for ↓*.
    for (const auto& t : dtd.types()) {
      if (!term_.count(t.name)) continue;
      std::set<std::string>& r = closure_[t.name];
      r.insert(t.name);
      std::vector<std::string> stack = {t.name};
      while (!stack.empty()) {
        std::string cur = stack.back();
        stack.pop_back();
        for (const auto& b : edges_[cur]) {
          if (r.insert(b).second) stack.push_back(b);
        }
      }
    }
  }

  SatDecision Solve() {
    if (!term_.count(dtd_.root())) {
      return SatDecision::Unsat("root element type is nonterminating");
    }
    const std::set<std::string>& res = Reach(&p_, dtd_.root());
    if (res.empty()) return SatDecision::Unsat("reach(p, r) is empty");
    // Build Tree(p, D): realize a path to some B in reach(p, r).
    const std::string& target = *res.begin();
    std::vector<std::string> chain;
    BuildPath(&p_, dtd_.root(), target, &chain);
    XmlTree tree = RealizeChain(chain);
    return SatDecision::Sat(std::move(tree), "Thm 4.1 reach DP");
  }

 private:
  const std::set<std::string>& Reach(const PathExpr* p, const std::string& a) {
    auto& per_type = table_[p];
    auto it = per_type.find(a);
    if (it != per_type.end()) return it->second;
    std::set<std::string> r;
    switch (p->kind) {
      case PathKind::kEmpty:
        r = {a};
        break;
      case PathKind::kLabel:
        if (edges_[a].count(p->label)) r = {p->label};
        break;
      case PathKind::kChildAny:
        r = edges_[a];
        break;
      case PathKind::kDescOrSelf:
        r = closure_[a];
        break;
      case PathKind::kUnion: {
        r = Reach(p->lhs.get(), a);
        const auto& r2 = Reach(p->rhs.get(), a);
        r.insert(r2.begin(), r2.end());
        break;
      }
      case PathKind::kSeq: {
        for (const auto& b : Reach(p->lhs.get(), a)) {
          const auto& r2 = Reach(p->rhs.get(), b);
          r.insert(r2.begin(), r2.end());
        }
        break;
      }
      default:
        break;
    }
    return per_type[a] = std::move(r);
  }

  // path(p, A, B) of the Thm 4.1 proof: labels of a chain from A to B.
  void BuildPath(const PathExpr* p, const std::string& a, const std::string& b,
                 std::vector<std::string>* out) {
    switch (p->kind) {
      case PathKind::kEmpty:
        return;  // a == b
      case PathKind::kLabel:
      case PathKind::kChildAny:
        out->push_back(b);
        return;
      case PathKind::kDescOrSelf: {
        // Shortest DTD-graph path from a to b (possibly empty when a == b).
        if (a == b) return;
        std::map<std::string, std::string> pred;
        std::vector<std::string> queue = {a};
        pred[a] = a;
        for (size_t i = 0; i < queue.size(); ++i) {
          std::string cur = queue[i];
          if (cur == b) break;
          for (const auto& c : edges_[cur]) {
            if (!pred.count(c)) {
              pred[c] = cur;
              queue.push_back(c);
            }
          }
        }
        std::vector<std::string> rev;
        for (std::string cur = b; cur != a; cur = pred[cur]) rev.push_back(cur);
        out->insert(out->end(), rev.rbegin(), rev.rend());
        return;
      }
      case PathKind::kUnion: {
        if (Reach(p->lhs.get(), a).count(b)) {
          BuildPath(p->lhs.get(), a, b, out);
        } else {
          BuildPath(p->rhs.get(), a, b, out);
        }
        return;
      }
      case PathKind::kSeq: {
        for (const auto& c : Reach(p->lhs.get(), a)) {
          if (Reach(p->rhs.get(), c).count(b)) {
            BuildPath(p->lhs.get(), a, c, out);
            BuildPath(p->rhs.get(), c, b, out);
            return;
          }
        }
        return;
      }
      default:
        return;
    }
  }

  // Realizes the chain below the root and completes to a conforming tree.
  XmlTree RealizeChain(const std::vector<std::string>& chain) {
    auto sizes = MinimalExpansionSizes(dtd_);
    XmlTree tree;
    NodeId cur = tree.CreateRoot(dtd_.root());
    std::vector<NodeId> pending;  // nodes needing minimal expansion
    for (const auto& next : chain) {
      for (const auto& a : dtd_.Attrs(tree.label(cur))) {
        tree.SetAttr(cur, a, "0");
      }
      std::vector<std::string> word;
      int tpos = 0;
      if (!MinimalWordContaining(dtd_.Production(tree.label(cur)), next, sizes,
                                 &word, &tpos)) {
        break;  // unreachable by construction; keep the tree well formed
      }
      NodeId next_node = kNullNode;
      for (size_t i = 0; i < word.size(); ++i) {
        NodeId c = tree.AddChild(cur, word[i]);
        if (static_cast<int>(i) == tpos) {
          next_node = c;
        } else {
          pending.push_back(c);
        }
      }
      cur = next_node;
    }
    pending.push_back(cur);
    for (NodeId n : pending) ExpandMinimally(dtd_, &tree, n);
    return tree;
  }

  const PathExpr& p_;
  const Dtd& dtd_;
  std::set<std::string> term_;
  std::map<std::string, std::set<std::string>> edges_;
  std::map<std::string, std::set<std::string>> closure_;
  ReachTable table_;
};

}  // namespace

Result<SatDecision> ReachSat(const PathExpr& p, const Dtd& dtd) {
  if (!InFragment(p)) {
    return Result<SatDecision>::Error(
        "query outside X(down,ds,union): qualifiers/upward/sibling axes not "
        "supported by the Thm 4.1 procedure");
  }
  return ReachSolver(p, dtd).Solve();
}

}  // namespace xpathsat
