// SAT(X(↓,↓*,↑,↑*,∪,[],=)) — the positive fragment with DTDs — via witness
// skeletons (Theorem 4.4).
//
// The procedure mirrors the NP upper-bound proof: a satisfying tree can be
// pruned to a witness tree with at most |p| branches and depth at most
// (3|p|−1)|D| (Lemmas 4.5/4.6). We search for such a witness directly: the
// DTD is normalized (Prop 3.3) so children structure is one of
// {ε, fixed word, single-choice, star}; navigation steps of the (rewritten)
// query get embedded into a partial witness tree with backtracking; ↓*/↑*
// edges choose connecting DTD-graph chains bounded by the shortcut lemma;
// data-value (in)equalities are collected and checked by union-find at the
// leaves of the search.
//
// Answers are exact within the configured bounds: kSat comes with a verified
// conforming witness; kUnsat means the bounded witness space is exhausted
// (complete when the bounds dominate the paper's, see options); kUnknown means
// the step cap was hit.
#ifndef XPATHSAT_SAT_SKELETON_SAT_H_
#define XPATHSAT_SAT_SKELETON_SAT_H_

#include "src/sat/compiled_dtd.h"
#include "src/sat/decision.h"
#include "src/util/status.h"
#include "src/xpath/ast.h"

namespace xpathsat {

/// Search bounds for SkeletonSat.
struct SkeletonSatOptions {
  /// Witness node cap; 0 derives 4·|p|·(|D|+1) from Lemma 4.5.
  int max_nodes = 0;
  /// Maximum length of a single ↓* connecting chain; 0 derives (3|p|−1)|D|,
  /// clamped to 64.
  int max_desc_len = 0;
  /// Max occurrences of one element type along a single ↓* chain (the
  /// shortcut lemma removes repeats from connector segments; 2 leaves room
  /// for interleaved witness nodes).
  int desc_repeat_cap = 2;
  /// Backtracking step cap before returning kUnknown.
  long long max_steps = 20000000;
};

/// Decides (p, dtd) for positive p (no negation; data values, qualifiers,
/// union, upward and recursive axes all allowed; no sibling axes).
Result<SatDecision> SkeletonSat(const PathExpr& p, const Dtd& dtd,
                                const SkeletonSatOptions& options = {});

/// Same decision reusing the precompiled normal form N(D). Thread-safe for
/// concurrent calls sharing one CompiledDtd. A non-null `rewrites` memoizes
/// the Prop 3.3 f(p) rewriting across calls (the engine threads its sharded
/// RewriteCache through here); verdicts are identical either way.
Result<SatDecision> SkeletonSat(const PathExpr& p, const CompiledDtd& compiled,
                                const SkeletonSatOptions& options = {},
                                RewriteCache* rewrites = nullptr);

}  // namespace xpathsat

#endif  // XPATHSAT_SAT_SKELETON_SAT_H_
