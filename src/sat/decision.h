// Common types for the satisfiability decision procedures, plus the
// universal-DTD construction D_p of Proposition 3.1 that reduces DTD-less
// satisfiability to SAT(X).
#ifndef XPATHSAT_SAT_DECISION_H_
#define XPATHSAT_SAT_DECISION_H_

#include <optional>
#include <string>
#include <vector>

#include "src/xml/dtd.h"
#include "src/xml/tree.h"
#include "src/xpath/ast.h"

namespace xpathsat {

/// Verdict of a decision procedure.
enum class SatVerdict {
  kSat,      ///< a conforming satisfying tree exists (witness attached)
  kUnsat,    ///< no conforming satisfying tree exists
  kUnknown,  ///< resource caps were hit before the search space was exhausted
};

/// Outcome of a decision procedure.
struct SatDecision {
  SatVerdict verdict = SatVerdict::kUnknown;
  /// Satisfying conforming tree, when verdict == kSat and the procedure
  /// produces witnesses.
  std::optional<XmlTree> witness;
  /// Free-form diagnostics (algorithm notes, cap reports).
  std::string note;

  bool sat() const { return verdict == SatVerdict::kSat; }
  bool unsat() const { return verdict == SatVerdict::kUnsat; }

  static SatDecision Sat(XmlTree witness, std::string note = "") {
    SatDecision d;
    d.verdict = SatVerdict::kSat;
    d.witness = std::move(witness);
    d.note = std::move(note);
    return d;
  }
  static SatDecision SatNoWitness(std::string note = "") {
    SatDecision d;
    d.verdict = SatVerdict::kSat;
    d.note = std::move(note);
    return d;
  }
  static SatDecision Unsat(std::string note = "") {
    SatDecision d;
    d.verdict = SatVerdict::kUnsat;
    d.note = std::move(note);
    return d;
  }
  static SatDecision Unknown(std::string note = "") {
    SatDecision d;
    d.verdict = SatVerdict::kUnknown;
    d.note = std::move(note);
    return d;
  }
};

/// Collects the element labels mentioned by a query (as subqueries `A` or
/// label tests lab() = A) and the attribute names it mentions.
void CollectQueryLabels(const PathExpr& p, std::set<std::string>* labels,
                        std::set<std::string>* attrs);
void CollectQueryLabels(const Qualifier& q, std::set<std::string>* labels,
                        std::set<std::string>* attrs);

/// Collects the constants compared against in the query.
void CollectQueryConstants(const PathExpr& p, std::set<std::string>* consts);
void CollectQueryConstants(const Qualifier& q, std::set<std::string>* consts);

/// The universal DTDs D_p of Proposition 3.1: Ele = labels of p plus a fresh
/// label X, production A -> (A1 + ... + An)* for every A, R(A) = all
/// attributes of p, one DTD per choice of root. Satisfiability of p in the
/// absence of DTDs equals satisfiability of (p, D) for some D in this family.
std::vector<Dtd> UniversalDtds(const PathExpr& p);

}  // namespace xpathsat

#endif  // XPATHSAT_SAT_DECISION_H_
