// SAT(X(↓,↓*,∪)) in PTIME — the reach(p',A) dynamic program of Theorem 4.1,
// including the witness-tree construction Tree(p, D).
//
// Works directly on arbitrary DTDs: the DTD-graph edge (A,B) is present iff
// some word of L(P(A)) contains B with every symbol terminating, which is the
// exact condition for B to appear as a child of an A element in a conforming
// tree.
#ifndef XPATHSAT_SAT_REACH_SAT_H_
#define XPATHSAT_SAT_REACH_SAT_H_

#include "src/sat/compiled_dtd.h"
#include "src/sat/decision.h"
#include "src/util/status.h"
#include "src/xpath/ast.h"

namespace xpathsat {

/// Decides satisfiability of (p, dtd) for p in X(↓,↓*,∪) (no qualifiers, no
/// data values, no upward or sibling axes). O(|p| · |D|²) after edge setup.
/// Returns an error if p is outside the fragment. Produces the Tree(p, D)
/// witness on kSat unless `build_witness` is false (the realization costs
/// more than the reach DP; verdict-only callers skip it).
Result<SatDecision> ReachSat(const PathExpr& p, const Dtd& dtd,
                             bool build_witness = true);

/// Same decision over precompiled artifacts: skips the edge/closure setup.
/// Thread-safe for concurrent calls sharing one CompiledDtd.
Result<SatDecision> ReachSat(const PathExpr& p, const CompiledDtd& compiled,
                             bool build_witness = true);

}  // namespace xpathsat

#endif  // XPATHSAT_SAT_REACH_SAT_H_
