// Satisfiability of X(↓,↓*,∪,[]) in the absence of DTDs (Theorem 6.11(1)):
// cubic-time sat/reach dynamic program over the labels of the query plus one
// fresh label, with witness construction Tree(p).
//
// Corollary (also Thm 6.11(1)): label-test-free queries in this fragment are
// always satisfiable.
#ifndef XPATHSAT_SAT_NODTD_SAT_H_
#define XPATHSAT_SAT_NODTD_SAT_H_

#include "src/sat/decision.h"
#include "src/util/status.h"
#include "src/xpath/ast.h"

namespace xpathsat {

/// Decides satisfiability of p in X(↓,↓*,∪,[]) (label tests allowed; no
/// negation, data values, upward or sibling axes) with no DTD constraint.
/// Produces a witness tree on kSat.
Result<SatDecision> NoDtdSat(const PathExpr& p);

}  // namespace xpathsat

#endif  // XPATHSAT_SAT_NODTD_SAT_H_
