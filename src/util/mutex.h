// util::Mutex / util::MutexLock / util::CondVar: the project's ONLY mutex
// vocabulary outside this header.
//
// Mutex wraps std::mutex in a CAPABILITY("mutex") type so Clang's
// thread-safety analysis (-Wthread-safety, enabled with -Werror in the
// clang-static-analysis CI job) can prove the lock discipline: every guarded
// field is GUARDED_BY its mutex, every lock-held helper is REQUIRES, and a
// field access without the lock is a compile error — not a TSan hope.
// std::mutex itself is deliberately banned outside src/util/ by the
// invariant linter (tools/lint/check_invariants.py), because a naked
// std::mutex is invisible to the analysis.
//
// CondVar wraps std::condition_variable against Mutex. It exposes ONLY
// un-predicated waits (Wait / WaitFor / WaitUntil): predicate waits take
// lambdas that run with the lock held, which the analysis cannot see into —
// callers write the standard `while (!predicate) cv.Wait(mu);` loop instead,
// keeping every guarded-field read inside an analyzed scope. All waits
// handle spurious wakeups the usual way (the caller's loop re-checks).
//
// There is intentionally no manual Lock()/Unlock() surface on the public
// idiom: MutexLock is scoped-only, so lock scopes are always block scopes
// and the analysis (and the reader) can match acquire to release by eye.
#ifndef XPATHSAT_UTIL_MUTEX_H_
#define XPATHSAT_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/util/thread_annotations.h"

namespace xpathsat {
namespace util {

class CondVar;

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock: acquires on construction, releases on destruction. The one
/// way the project takes a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over util::Mutex. Every wait REQUIRES the mutex: the
/// caller holds it (via MutexLock), the wait releases it while blocking and
/// re-acquires before returning — standard condition-variable semantics,
/// expressed so the analysis knows the lock is held on both sides of the
/// call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken).
  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the scoped MutexLock stays the owner.
    // The analysis sees no Lock/Unlock here, which is exactly right: the
    // capability is held on entry and on return.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Waits until `deadline`; returns false iff the deadline passed (a
  /// spurious wakeup before the deadline returns true — callers loop on
  /// their predicate either way).
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status != std::cv_status::timeout;
  }

  /// Waits up to `timeout`; returns false iff it elapsed.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu,
               const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace util
}  // namespace xpathsat

#endif  // XPATHSAT_UTIL_MUTEX_H_
