#include "src/util/strings.h"

namespace xpathsat {

std::string Join(const std::vector<std::string>& items, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string NumberedName(const std::string& base, int i) {
  if (i <= 1) return base;
  return base + std::to_string(i);
}

}  // namespace xpathsat
