// A bounded, closeable MPMC queue: the hand-off between the socket
// reactor (producer: one readiness thread) and the fixed session worker
// pool (consumers). Bounded so a stalled consumer side back-pressures the
// producer instead of queueing without limit; closeable so shutdown drains
// deterministically — after Close, Push is refused and Pop returns the
// remaining items, then false.
//
// Plain mutex + two condvars, with the lock discipline stated in the types:
// every queue field is GUARDED_BY(mu_), so a Clang -Wthread-safety build
// proves no path touches them unlocked. The serving layer enqueues coarse
// tokens (one per connection needing work), so queue contention is
// negligible next to the work items — same reasoning as ThreadPool, same
// idiom as the Wazuh engine's accept/worker hand-off queue.
#ifndef XPATHSAT_UTIL_BOUNDED_QUEUE_H_
#define XPATHSAT_UTIL_BOUNDED_QUEUE_H_

#include <cstddef>
#include <deque>
#include <utility>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace xpathsat {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` must be >= 1 (values below are clamped up).
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full; returns false (dropping `item`) once
  /// the queue is closed.
  bool Push(T item) {
    util::MutexLock lock(mu_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool TryPush(T item) {
    util::MutexLock lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks for the next item. Returns false only when the queue is closed
  /// AND drained — items enqueued before Close are always delivered.
  bool Pop(T* out) {
    util::MutexLock lock(mu_);
    while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return true;
  }

  /// Refuses further pushes and wakes every waiter. Idempotent.
  void Close() {
    util::MutexLock lock(mu_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const {
    util::MutexLock lock(mu_);
    return closed_;
  }

  size_t size() const {
    util::MutexLock lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable util::Mutex mu_;
  util::CondVar not_empty_;
  util::CondVar not_full_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace xpathsat

#endif  // XPATHSAT_UTIL_BOUNDED_QUEUE_H_
