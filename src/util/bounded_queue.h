// A bounded, closeable MPMC queue: the hand-off between the socket
// reactor (producer: one readiness thread) and the fixed session worker
// pool (consumers). Bounded so a stalled consumer side back-pressures the
// producer instead of queueing without limit; closeable so shutdown drains
// deterministically — after Close, Push is refused and Pop returns the
// remaining items, then false.
//
// Plain mutex + two condvars. The serving layer enqueues coarse tokens (one
// per connection needing work), so queue contention is negligible next to
// the work items — same reasoning as ThreadPool, same idiom as the Wazuh
// engine's accept/worker hand-off queue.
#ifndef XPATHSAT_UTIL_BOUNDED_QUEUE_H_
#define XPATHSAT_UTIL_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace xpathsat {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` must be >= 1 (values below are clamped up).
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full; returns false (dropping `item`) once
  /// the queue is closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks for the next item. Returns false only when the queue is closed
  /// AND drained — items enqueued before Close are always delivered.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// Refuses further pushes and wakes every waiter. Idempotent.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace xpathsat

#endif  // XPATHSAT_UTIL_BOUNDED_QUEUE_H_
