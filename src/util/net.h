// Thin POSIX socket helpers for the serving layer: unix-domain and TCP
// listeners/connectors, EINTR-safe full writes, and a bounded line reader.
//
// Everything here is transport plumbing — no protocol knowledge. The server
// (src/server/) and the CLI's --connect client both sit on these so there is
// exactly one place that handles partial reads/writes, SIGPIPE suppression,
// and hostile line lengths.
//
// All functions return Status/Result and never throw; fds are plain ints
// wrapped in ScopedFd for ownership.
#ifndef XPATHSAT_UTIL_NET_H_
#define XPATHSAT_UTIL_NET_H_

#include <cstddef>
#include <string>
#include <utility>

#include "src/util/status.h"

namespace xpathsat {
namespace net {

/// Owns a file descriptor; closes it on destruction. Movable, not copyable.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  ~ScopedFd() { Close(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Close();

 private:
  int fd_ = -1;
};

/// Creates a unix-domain stream listener bound to `path` (unlinking a stale
/// socket file first). The path must fit in sockaddr_un (~107 bytes) —
/// callers should prefer short, working-directory-relative paths.
Result<ScopedFd> ListenUnix(const std::string& path, int backlog = 64);

/// Creates a TCP stream listener on `host:port` (host defaults to loopback;
/// port 0 picks an ephemeral port). On success `*actual_port` (if non-null)
/// receives the bound port.
Result<ScopedFd> ListenTcp(const std::string& host, int port,
                           int* actual_port, int backlog = 64);

/// Blocking accept; returns the connected fd. EINTR is retried; other
/// failures (including the listener being closed during shutdown) are
/// errors.
Result<ScopedFd> Accept(int listen_fd);

/// Connects to a unix-domain listener at `path`.
Result<ScopedFd> ConnectUnix(const std::string& path);

/// Connects to `host:port` over TCP.
Result<ScopedFd> ConnectTcp(const std::string& host, int port);

/// Writes all of `data`, retrying short writes and EINTR. SIGPIPE is
/// suppressed (MSG_NOSIGNAL); a peer hangup surfaces as an error Status.
Status WriteAll(int fd, const std::string& data);

/// Buffered newline-delimited reader with a hard per-line byte cap.
///
/// ReadLine returns one logical line (without the trailing '\n'; a trailing
/// '\r' is stripped). A line longer than `max_line_bytes` is NEVER returned
/// as a kLine — whether its newline was already buffered or the buffer
/// outgrew the cap mid-line: the reader reports kOversized once (with a
/// short prefix in *line), swallows input through the line's newline, and
/// the stream stays usable — protocol code answers with a structured error
/// instead of either buffering without bound or killing the connection.
class LineReader {
 public:
  enum class Event {
    kLine,       // *line holds the next line
    kOversized,  // a too-long line was discarded; *line holds a prefix
    kEof,        // clean end of stream (any unterminated tail is returned
                 // first as a kLine)
    kError,      // read(2) failure; *error holds strerror
  };

  explicit LineReader(int fd, size_t max_line_bytes)
      : fd_(fd), max_line_bytes_(max_line_bytes) {}

  /// Blocks for the next event. `line` and `error` must be non-null.
  Event ReadLine(std::string* line, std::string* error);

 private:
  int fd_;
  size_t max_line_bytes_;
  std::string buffer_;   // bytes read but not yet consumed
  size_t scanned_ = 0;   // prefix of buffer_ known to contain no '\n'
  bool discarding_ = false;
  bool eof_ = false;
};

}  // namespace net
}  // namespace xpathsat

#endif  // XPATHSAT_UTIL_NET_H_
