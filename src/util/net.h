// Thin POSIX socket helpers for the serving layer: unix-domain and TCP
// listeners/connectors, EINTR-safe full writes, newline framing, readiness
// polling, and nonblocking-fd control.
//
// Everything here is transport plumbing — no protocol knowledge. The server
// (src/server/) and the CLI's --connect client both sit on these so there is
// exactly one place that handles partial reads/writes, SIGPIPE suppression,
// and hostile line lengths.
//
// All functions return Status/Result and never throw; fds are plain ints
// wrapped in ScopedFd for ownership.
#ifndef XPATHSAT_UTIL_NET_H_
#define XPATHSAT_UTIL_NET_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace xpathsat {
namespace net {

/// Owns a file descriptor; closes it on destruction. Movable, not copyable.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  ~ScopedFd() { Close(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Close();

 private:
  int fd_ = -1;
};

/// Validates a TCP port number. Listeners may use 0 (ephemeral); connectors
/// must name a real port. Anything outside [min, 65535] is a structured
/// error — notably ports > 65535, which a bare uint16_t cast would silently
/// truncate (70000 -> 4464).
Status ValidatePort(int port, bool allow_ephemeral);

/// Creates a unix-domain stream listener bound to `path` (unlinking a stale
/// socket file first). The path must fit in sockaddr_un (~107 bytes) —
/// callers should prefer short, working-directory-relative paths.
Result<ScopedFd> ListenUnix(const std::string& path, int backlog = 64);

/// Creates a TCP stream listener on `host:port` (host defaults to loopback;
/// port 0 picks an ephemeral port). On success `*actual_port` (if non-null)
/// receives the bound port. Ports outside [0, 65535] are rejected.
Result<ScopedFd> ListenTcp(const std::string& host, int port,
                           int* actual_port, int backlog = 64);

/// Blocking accept; returns the connected fd. EINTR is retried; other
/// failures (including the listener being closed during shutdown) are
/// errors.
Result<ScopedFd> Accept(int listen_fd);

/// Accept that also reports the peer address ("a.b.c.d" for TCP peers,
/// empty for unix-domain peers). Nonblocking listeners surface EAGAIN /
/// EWOULDBLOCK as `*would_block = true` with an error result.
Result<ScopedFd> AcceptWithPeer(int listen_fd, std::string* peer_ip,
                                bool* would_block);

/// Connects to a unix-domain listener at `path`.
Result<ScopedFd> ConnectUnix(const std::string& path);

/// Connects to `host:port` over TCP. Ports outside [1, 65535] are rejected.
Result<ScopedFd> ConnectTcp(const std::string& host, int port);

/// Sets or clears O_NONBLOCK on `fd`.
Status SetNonBlocking(int fd, bool nonblocking);

/// Writes all of `data`, retrying short writes and EINTR. SIGPIPE is
/// suppressed (MSG_NOSIGNAL); a peer hangup surfaces as an error Status.
/// A zero-length send() — the transport making no progress — is reported as
/// a distinct "connection closed" error, never through stale errno text.
Status WriteAll(int fd, const std::string& data);

namespace internal {
/// The WriteAll loop over an injectable send function (same contract as
/// send(2): bytes written, 0 for no progress, -1 + errno for failure).
/// Exists so the n == 0 and EINTR paths are unit-testable without a socket
/// that misbehaves on cue.
Status WriteAllWith(const std::function<ssize_t(const char*, size_t)>& send_fn,
                    const std::string& data);
}  // namespace internal

/// Incremental newline framing with a hard per-line byte cap — the push-side
/// core shared by the blocking LineReader and the reactor's nonblocking read
/// path, so there is exactly one implementation of oversized-line handling.
///
/// Feed() appends raw bytes; Next() drains decoded events. A line of exactly
/// max_line_bytes is still a line; one byte more is reported kOversized once
/// (with a short prefix in *line), the rest is swallowed through its
/// newline, and the stream stays usable. The cap counts line *content*: a
/// CR-LF terminator's '\r' is part of the terminator, not the line, so CR-LF
/// clients get the same budget as LF clients. After SignalEof, any
/// unterminated tail is returned first as a kLine, then kEof.
///
/// With set_allow_binary(true) the decoder also recognizes length-prefixed
/// binary frames interleaved with text lines: a payload byte sequence
/// [0x00][u32 length, big-endian][length bytes]. The marker byte 0x00 can
/// never start a valid text command, so detection at an event boundary is
/// unambiguous. Frame payloads are returned verbatim (no '\n'/'\r'
/// stripping) as kFrame. A frame whose declared length exceeds
/// max_line_bytes, or that is truncated by EOF, is kBadFrame — unlike an
/// oversized text line there is no newline to resync on, so callers must
/// treat kBadFrame as fatal for the stream.
class LineDecoder {
 public:
  enum class Event {
    kNone,       // no complete event buffered; feed more bytes
    kLine,       // *line holds the next line ('\n' stripped, '\r' too)
    kOversized,  // a too-long line was discarded; *line holds a prefix
    kEof,        // clean end of stream
    kFrame,      // *line holds a binary frame payload (allow_binary only)
    kBadFrame,   // malformed binary frame; *line holds a detail message.
                 // The stream cannot be resynced — stop feeding.
  };

  /// Binary frame marker + header size: [0x00][u32 big-endian length].
  static constexpr char kFrameMarker = '\0';
  static constexpr size_t kFrameHeaderBytes = 5;

  explicit LineDecoder(size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  void Feed(const char* data, size_t size) {
    buffer_.append(data, size);
  }
  void SignalEof() { eof_ = true; }

  /// Opts in to binary frame decoding (off by default: a 0x00 byte in a
  /// text-only stream is just line content).
  void set_allow_binary(bool allow) { allow_binary_ = allow; }

  /// Returns the next buffered event; kNone means more input is needed.
  /// `line` must be non-null.
  Event Next(std::string* line);

  /// Bytes buffered but not yet consumed (bounded: the decoder never holds
  /// more than max_line_bytes + one Feed chunk).
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  size_t max_line_bytes_;
  std::string buffer_;   // bytes fed but not yet consumed
  size_t scanned_ = 0;   // prefix of buffer_ known to contain no '\n'
  bool discarding_ = false;
  bool eof_ = false;
  bool allow_binary_ = false;
};

/// Buffered newline-delimited reader with a hard per-line byte cap: a
/// blocking read(2) loop over a LineDecoder.
///
/// ReadLine returns one logical line (without the trailing '\n'; a trailing
/// '\r' is stripped). A line longer than `max_line_bytes` is NEVER returned
/// as a kLine — whether its newline was already buffered or the buffer
/// outgrew the cap mid-line: the reader reports kOversized once (with a
/// short prefix in *line), swallows input through the line's newline, and
/// the stream stays usable — protocol code answers with a structured error
/// instead of either buffering without bound or killing the connection.
class LineReader {
 public:
  enum class Event {
    kLine,       // *line holds the next line
    kOversized,  // a too-long line was discarded; *line holds a prefix
    kEof,        // clean end of stream (any unterminated tail is returned
                 // first as a kLine)
    kError,      // read(2) failure; *error holds strerror
  };

  explicit LineReader(int fd, size_t max_line_bytes)
      : fd_(fd), decoder_(max_line_bytes) {}

  /// Blocks for the next event. `line` and `error` must be non-null.
  Event ReadLine(std::string* line, std::string* error);

 private:
  int fd_;
  LineDecoder decoder_;
};

/// Readiness multiplexer: epoll(7) on Linux, poll(2) everywhere (and on
/// Linux too when constructed with force_poll, which keeps the fallback
/// honest under test). Level-triggered, read-side only — the serving layer
/// writes from completion threads with send timeouts, so the reactor never
/// needs write readiness.
class Poller {
 public:
  // Event bitmask values for Ready::events.
  static constexpr uint32_t kReadable = 1u << 0;
  static constexpr uint32_t kHangup = 1u << 1;
  static constexpr uint32_t kError = 1u << 2;

  struct Ready {
    int fd = -1;
    uint32_t events = 0;
  };

  explicit Poller(bool force_poll = false);
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// True when the poller could be set up (epoll_create1 can fail under fd
  /// pressure); a dead poller fails every Wait.
  bool ok() const;

  /// Starts watching `fd` for read readiness (and hangup). Watching an
  /// already-watched fd is an error.
  Status Add(int fd);
  /// Stops watching `fd`.
  Status Remove(int fd);

  /// Blocks up to `timeout_ms` (-1: indefinitely) and appends ready fds to
  /// `*out` (which is cleared first). Returns the number of ready fds; 0 on
  /// timeout. EINTR is retried.
  Result<int> Wait(std::vector<Ready>* out, int timeout_ms);

  size_t watched_fds() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace net
}  // namespace xpathsat

#endif  // XPATHSAT_UTIL_NET_H_
