// A fixed-size thread pool for batch execution. Workers pull std::function
// jobs from a mutex-protected queue; Submit returns a std::future so callers
// can block on individual items or the whole batch. Destruction drains the
// queue (already-submitted jobs run to completion) and joins all workers.
//
// SubmitCancellable enqueues a job behind a CancellableJob control block:
// anyone holding the block can revoke the job while it is still queued, and
// the popped queue entry then returns without running it. The arbitration is
// a single atomic state CAS, so exactly one of {worker, canceller} wins —
// this is what lets the SatEngine's deadline reaper cancel queued work
// instead of letting it expire on a worker.
//
// The queue and stop flag are GUARDED_BY(mu_): a Clang -Wthread-safety
// build proves every access (including the shutdown path) holds the lock.
//
// The pool is intentionally minimal: no work stealing, no priorities. The
// SatEngine submits coarse-grained jobs (one satisfiability decision each),
// so queue contention is negligible next to the work items.
#ifndef XPATHSAT_UTIL_THREAD_POOL_H_
#define XPATHSAT_UTIL_THREAD_POOL_H_

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace xpathsat {

/// Shared control block for a cancellable pool submission. The lifecycle is
/// kQueued -> (kRunning -> kDone | kCancelled); both transitions out of
/// kQueued are CASes on one atomic, so a worker starting the job and a
/// caller cancelling it cannot both win.
///
/// Cancellation only revokes *queued* work: once a worker has started the
/// job it runs to completion and TryCancel returns false. The canceller —
/// not the pool — is responsible for fulfilling whatever result channel the
/// job was going to fill (the job's function is never invoked after a
/// successful cancel).
class CancellableJob {
 public:
  enum class State { kQueued, kRunning, kCancelled, kDone };

  /// Revokes the job if it has not started; returns true iff this call won
  /// (at most one TryCancel over a job's lifetime returns true).
  bool TryCancel() {
    State expected = State::kQueued;
    return state_.compare_exchange_strong(expected, State::kCancelled,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }

  State state() const { return state_.load(std::memory_order_acquire); }
  bool cancelled() const { return state() == State::kCancelled; }
  bool done() const { return state() == State::kDone; }

 private:
  friend class ThreadPool;

  bool TryStart() {
    State expected = State::kQueued;
    return state_.compare_exchange_strong(expected, State::kRunning,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }
  void Finish() { state_.store(State::kDone, std::memory_order_release); }

  std::atomic<State> state_{State::kQueued};
};

class ThreadPool {
 public:
  /// Starts `num_threads` workers; values < 1 fall back to
  /// hardware_concurrency (and to 1 when even that is unknown).
  explicit ThreadPool(int num_threads = 0) {
    if (num_threads < 1) {
      num_threads = static_cast<int>(std::thread::hardware_concurrency());
      if (num_threads < 1) num_threads = 1;
    }
    workers_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      util::MutexLock lock(mu_);
      stopping_ = true;
    }
    wake_.NotifyAll();
    for (std::thread& w : workers_) w.join();
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result. Safe to call from
  /// multiple threads (including from inside pool jobs — but beware that
  /// blocking on a future from within a worker can deadlock a full pool).
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      util::MutexLock lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.NotifyOne();
    return result;
  }

  /// Enqueues `fn` (a void() callable) behind the caller-provided
  /// cancellation control block (which must be fresh — kQueued, never
  /// submitted before). `fn` runs at most once, and only if the job is still
  /// queued when a worker picks it up; after a successful
  /// CancellableJob::TryCancel it is never invoked (and is destroyed without
  /// running). The caller owns any result signalling — the pool exposes no
  /// future here precisely because a cancelled job produces no result.
  /// Taking the block as an argument lets the caller publish it (e.g. store
  /// it in a ticket) *before* a worker can possibly pick the job up.
  template <typename Fn>
  void SubmitCancellable(std::shared_ptr<CancellableJob> job, Fn&& fn) {
    auto body = std::make_shared<typename std::decay<Fn>::type>(
        std::forward<Fn>(fn));
    {
      util::MutexLock lock(mu_);
      queue_.emplace_back([job = std::move(job), body] {
        if (!job->TryStart()) return;  // cancelled while queued
        (*body)();
        job->Finish();
      });
    }
    wake_.NotifyOne();
  }

  /// As above, creating and returning a fresh control block.
  template <typename Fn>
  std::shared_ptr<CancellableJob> SubmitCancellable(Fn&& fn) {
    auto job = std::make_shared<CancellableJob>();
    SubmitCancellable(job, std::forward<Fn>(fn));
    return job;
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> job;
      {
        util::MutexLock lock(mu_);
        while (!stopping_ && queue_.empty()) wake_.Wait(mu_);
        if (queue_.empty()) return;  // stopping_ with a drained queue
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
    }
  }

  util::Mutex mu_;
  util::CondVar wake_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace xpathsat

#endif  // XPATHSAT_UTIL_THREAD_POOL_H_
