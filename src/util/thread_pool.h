// A fixed-size thread pool for batch execution. Workers pull std::function
// jobs from a mutex-protected queue; Submit returns a std::future so callers
// can block on individual items or the whole batch. Destruction drains the
// queue (already-submitted jobs run to completion) and joins all workers.
//
// The pool is intentionally minimal: no work stealing, no priorities. The
// SatEngine submits coarse-grained jobs (one satisfiability decision each),
// so queue contention is negligible next to the work items.
#ifndef XPATHSAT_UTIL_THREAD_POOL_H_
#define XPATHSAT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace xpathsat {

class ThreadPool {
 public:
  /// Starts `num_threads` workers; values < 1 fall back to
  /// hardware_concurrency (and to 1 when even that is unknown).
  explicit ThreadPool(int num_threads = 0) {
    if (num_threads < 1) {
      num_threads = static_cast<int>(std::thread::hardware_concurrency());
      if (num_threads < 1) num_threads = 1;
    }
    workers_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result. Safe to call from
  /// multiple threads (including from inside pool jobs — but beware that
  /// blocking on a future from within a worker can deadlock a full pool).
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ with a drained queue
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace xpathsat

#endif  // XPATHSAT_UTIL_THREAD_POOL_H_
