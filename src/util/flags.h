// Strict numeric command-line-flag parsing, shared by the tools.
//
// Both xpathsat_cli and xpathsat_server validate integer flags the same way:
// the whole argument must be a base-10 integer inside the flag's range —
// garbage, trailing junk, and overflow are usage errors, never a silent
// misconfiguration. This header is the one implementation (the two tools
// used to carry byte-identical copies; the invariant linter's `dup-helper`
// rule now flags that class of copy-paste across tools/).
#ifndef XPATHSAT_UTIL_FLAGS_H_
#define XPATHSAT_UTIL_FLAGS_H_

#include <cerrno>
#include <cstdlib>
#include <string>

namespace xpathsat {
namespace flags {

struct ParsedInt {
  bool ok = false;
  long long value = 0;
  /// Human-readable reason when !ok ("invalid value 'x7' (expected an
  /// integer in [0, 65535])") — callers prepend the flag name.
  std::string error;
};

/// Parses `text` as a base-10 integer in [min_value, max_value]. The entire
/// string must be consumed: empty input, non-digit prefixes or suffixes,
/// out-of-range values, and values that overflow long long all fail.
inline ParsedInt ParseInt(const char* text, long long min_value,
                          long long max_value) {
  ParsedInt result;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || v < min_value ||
      v > max_value) {
    result.error = std::string("invalid value '") + text +
                   "' (expected an integer in [" +
                   std::to_string(min_value) + ", " +
                   std::to_string(max_value) + "])";
    return result;
  }
  result.ok = true;
  result.value = v;
  return result;
}

}  // namespace flags
}  // namespace xpathsat

#endif  // XPATHSAT_UTIL_FLAGS_H_
