// Lightweight Status / Result<T> error handling (Arrow/RocksDB idiom).
// The library does not use exceptions; fallible public APIs return Status or
// Result<T>.
#ifndef XPATHSAT_UTIL_STATUS_H_
#define XPATHSAT_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace xpathsat {

/// Outcome of a fallible operation that produces no value.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a failed status carrying a human-readable message.
  static Status Error(std::string message) { return Status(std::move(message)); }
  /// Constructs an OK status.
  static Status Ok() { return Status(); }

  /// True iff the operation succeeded.
  bool ok() const { return !message_.has_value(); }
  /// Error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return message_ ? *message_ : kEmpty;
  }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}
  std::optional<std::string> message_;
};

/// Outcome of a fallible operation producing a T on success.
template <typename T>
class Result {
 public:
  /// Success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  /// Failure. The error message must be nonempty.
  static Result<T> Error(std::string message) {
    Result<T> r;
    r.error_ = std::move(message);
    return r;
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }
  /// The value; must only be called when ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }
  /// The error message; empty when ok().
  const std::string& error() const { return error_; }

 private:
  Result() = default;
  std::optional<T> value_;
  std::string error_;
};

}  // namespace xpathsat

#endif  // XPATHSAT_UTIL_STATUS_H_
