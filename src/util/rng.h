// Deterministic, seedable RNG used by generators and property tests so that
// every randomized test and benchmark is reproducible.
#ifndef XPATHSAT_UTIL_RNG_H_
#define XPATHSAT_UTIL_RNG_H_

#include <cstdint>

namespace xpathsat {

/// SplitMix64-based deterministic RNG. Not cryptographic; stable across
/// platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int IntIn(int lo, int hi) {
    return lo + static_cast<int>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli(p) with p expressed in percent.
  bool Percent(int p) { return static_cast<int>(Below(100)) < p; }

 private:
  uint64_t state_;
};

}  // namespace xpathsat

#endif  // XPATHSAT_UTIL_RNG_H_
