#include "src/util/status.h"

// Status/Result are header-only; this translation unit anchors the target.
namespace xpathsat {}
