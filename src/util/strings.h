// Small string helpers shared across modules.
#ifndef XPATHSAT_UTIL_STRINGS_H_
#define XPATHSAT_UTIL_STRINGS_H_

#include <string>
#include <vector>

namespace xpathsat {

/// Joins the items with the given separator.
std::string Join(const std::vector<std::string>& items, const std::string& sep);

/// True iff `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// "A", "A2", "A3", ... — name with a numeric suffix for i >= 2.
std::string NumberedName(const std::string& base, int i);

}  // namespace xpathsat

#endif  // XPATHSAT_UTIL_STRINGS_H_
