// ShardedLruCache<K, V>: a thread-safe LRU cache split into independently
// locked shards, for hot shared caches that a single mutex would serialize.
//
// The engine's caches (compiled-DTD artifacts, canonical queries, the
// verdict memo, and the Prop 3.3 rewrite cache) are probed concurrently by
// every worker thread and, since the socket server, by every connection's
// completion path. One mutex around one LRU list makes every memo hit a
// serialization point; sharding by key hash gives S independent critical
// sections, so disjoint keys proceed in parallel and the warm path scales
// with cores instead of flatlining on the lock.
//
// Semantics:
//   * Aggregate `capacity` is split evenly across shards (each shard holds
//     at most floor(capacity / shards) >= 1 entries, so the cache as a
//     whole NEVER exceeds `capacity`; up to shards-1 slots go unused when
//     capacity is not divisible). Eviction is LRU *per shard*: with more
//     than one shard the globally least-recently-used entry is not
//     necessarily the victim. Construct with num_shards = 1 to reproduce
//     exact global-LRU behavior (the pre-sharding engine layout — the parity
//     baseline in tests and benches).
//   * Values are returned by copy; cache shared_ptr<const T> (or other
//     cheap handles) so readers never hold a shard lock while using a value.
//   * InsertIfAbsent keeps the incumbent on key collision — two threads
//     racing to fill the same key both end up using one winner, and an
//     existing entry is never clobbered (callers that must verify hits
//     beyond key equality, e.g. against fingerprint collisions, do so in
//     LookupIf's accept predicate and handle rejection themselves).
//   * hits()/misses() are aggregate atomic counters. Increments use release
//     ordering and the accessors acquire, so a reader that observes a
//     counter value also observes every cache mutation that preceded it
//     (the engine's stats-snapshot invariants build on this).
//
// Lock discipline (Clang -Wthread-safety checked): each shard's LRU list
// and index are GUARDED_BY that shard's mutex; the under-lock bodies live
// in REQUIRES-annotated helpers so the analysis proves every access path.
// Caller `accept` predicates run under the shard lock but only ever see the
// resident value V& — never the cache structures — so they carry no
// capability requirements of their own.
//
// Not provided (by design, nothing needs them yet): erase, resize. Snapshot
// iteration exists as ForEach (added for the persistent artifact store's
// save path): shard-at-a-time under each shard's lock, MRU-first within a
// shard, no cross-shard order.
#ifndef XPATHSAT_UTIL_SHARDED_LRU_CACHE_H_
#define XPATHSAT_UTIL_SHARDED_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "src/util/hashing.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace xpathsat {

/// Smallest power of two >= hardware concurrency, clamped to [1, 64]: the
/// default shard count when callers pass 0. Enough shards that threads
/// rarely collide, few enough that tiny caches are not spread into
/// one-entry slivers.
inline size_t DefaultCacheShards() {
  size_t hw = std::thread::hardware_concurrency();
  if (hw < 1) hw = 1;
  size_t shards = 1;
  while (shards < hw && shards < 64) shards <<= 1;
  return shards;
}

template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedLruCache {
 public:
  /// `capacity` is the aggregate entry budget (>= 1; 0 is clamped to 1).
  /// `num_shards` of 0 picks DefaultCacheShards(); any value is rounded up
  /// to a power of two and clamped to [1, capacity] so every shard can hold
  /// at least one entry. `count_probes` = false skips the hit/miss counters
  /// entirely (hits()/misses() stay 0) — for callers that keep their own
  /// accounting and do not want a second contended counter cacheline on
  /// every probe.
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 0,
                           bool count_probes = true)
      : count_probes_(count_probes) {
    if (capacity < 1) capacity = 1;
    size_t requested = num_shards == 0 ? DefaultCacheShards() : num_shards;
    size_t shards = 1;
    while (shards < requested && shards < 64) shards <<= 1;
    // Clamp AFTER the power-of-two round-up: shards must never outnumber
    // the capacity, or per-shard rounding would hold more entries than the
    // configured aggregate (e.g. capacity 5, 8 shards -> 8 resident).
    while (shards > capacity) shards >>= 1;
    mask_ = shards - 1;
    // Floor division (>= 1 because shards <= capacity): the aggregate
    // resident count never exceeds `capacity`, at the cost of up to
    // shards-1 unused slots when capacity is not divisible.
    per_shard_capacity_ = capacity / shards;
    shards_ = std::make_unique<Shard[]>(shards);
  }

  /// Returns a copy of the resident value (touching it to the shard's LRU
  /// front), or nullopt. Counts one hit or one miss.
  std::optional<V> Lookup(const K& key) {
    return LookupIf(key, [](V&) { return true; });
  }

  /// Lookup with verification: `accept(V&)` runs under the shard lock on the
  /// resident entry and may mutate it in place; returning false rejects the
  /// hit (the entry stays resident and untouched in LRU order) and the call
  /// counts as a miss. Use for hits that need checking beyond key equality
  /// (fingerprint-collision verification) or refreshing (memo pin updates).
  template <typename Accept>
  std::optional<V> LookupIf(const K& key, Accept&& accept) {
    std::optional<V> out;
    LookupWith(key, [&](V& value) {
      if (!accept(value)) return false;
      out = value;
      return true;
    });
    return out;
  }

  /// Like LookupIf, but returns only whether an accepted hit was found —
  /// for hot paths whose `accept` extracts what it needs under the shard
  /// lock (no copy of V out of the cache).
  template <typename Accept>
  bool LookupWith(const K& key, Accept&& accept) {
    Shard& shard = ShardFor(key);
    bool hit = false;
    {
      util::MutexLock lock(shard.mu);
      hit = LookupInShard(shard, key, accept);
    }
    if (count_probes_) {
      (hit ? hits_ : misses_).fetch_add(1, std::memory_order_release);
    }
    return hit;
  }

  /// Inserts key -> value unless the key is already resident, and returns
  /// the resident value either way (touched to the LRU front). On insert the
  /// shard evicts its own LRU tail past capacity. Does not count hit/miss —
  /// callers pair it with a Lookup/LookupIf that already did.
  V InsertIfAbsent(const K& key, V value) {
    Shard& shard = ShardFor(key);
    util::MutexLock lock(shard.mu);
    return InsertInShard(shard, key, std::move(value));
  }

  /// Visits every resident entry as fn(const K&, const V&), one shard at a
  /// time under that shard's lock (MRU-first within a shard; no global
  /// order). Entries inserted or evicted concurrently in shards not yet
  /// visited may or may not be seen — a consistent-per-shard snapshot, not
  /// a global one. `fn` runs under a shard lock: it must be quick, must not
  /// block, and must not reenter this cache. Does not touch LRU order and
  /// counts no probes. The artifact store's save path walks the caches with
  /// this.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t s = 0; s <= mask_; ++s) {
      Shard& shard = shards_[s];
      util::MutexLock lock(shard.mu);
      ForEachInShard(shard, fn);
    }
  }

  /// Entries currently resident, summed across shards (racy under traffic).
  size_t size() const {
    size_t total = 0;
    for (size_t s = 0; s <= mask_; ++s) {
      Shard& shard = shards_[s];
      util::MutexLock lock(shard.mu);
      total += shard.lru.size();
    }
    return total;
  }

  size_t num_shards() const { return mask_ + 1; }
  size_t per_shard_capacity() const { return per_shard_capacity_; }
  uint64_t hits() const { return hits_.load(std::memory_order_acquire); }
  uint64_t misses() const { return misses_.load(std::memory_order_acquire); }

 private:
  // alignas(64): shard locks on separate cache lines, so contention on one
  // shard does not false-share with its neighbors.
  struct alignas(64) Shard {
    mutable util::Mutex mu;
    std::list<std::pair<K, V>> lru GUARDED_BY(mu);  // most recent first
    std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator>
        index GUARDED_BY(mu);
  };

  /// The under-lock half of LookupWith: probe, verify via `accept`, touch
  /// to the LRU front. Returns whether an accepted hit was found.
  template <typename Accept>
  bool LookupInShard(Shard& shard, const K& key, Accept& accept)
      REQUIRES(shard.mu) {
    auto it = shard.index.find(key);
    if (it == shard.index.end() || !accept(it->second->second)) return false;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return true;
  }

  /// The under-lock half of InsertIfAbsent: keep-incumbent insert plus the
  /// per-shard LRU eviction.
  V InsertInShard(Shard& shard, const K& key, V value) REQUIRES(shard.mu) {
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->second;
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.index[key] = shard.lru.begin();
    while (shard.lru.size() > per_shard_capacity_) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
    }
    return shard.lru.front().second;
  }

  /// The under-lock half of ForEach.
  template <typename Fn>
  void ForEachInShard(Shard& shard, Fn& fn) const REQUIRES(shard.mu) {
    for (const auto& kv : shard.lru) fn(kv.first, kv.second);
  }

  Shard& ShardFor(const K& key) {
    // Mix the hash before masking: std::hash of integers is identity on the
    // major stdlibs, which would map sequential keys to sequential shards
    // but correlate with any structure in the key distribution.
    return shards_[HashMix(static_cast<uint64_t>(Hash{}(key))) & mask_];
  }

  size_t mask_ = 0;
  size_t per_shard_capacity_ = 1;
  bool count_probes_ = true;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace xpathsat

#endif  // XPATHSAT_UTIL_SHARDED_LRU_CACHE_H_
