#include "src/util/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unordered_set>

namespace xpathsat {
namespace net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

void ScopedFd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ValidatePort(int port, bool allow_ephemeral) {
  const int min_port = allow_ephemeral ? 0 : 1;
  if (port < min_port || port > 65535) {
    return Status::Error("port " + std::to_string(port) +
                         " out of range [" + std::to_string(min_port) +
                         ", 65535]");
  }
  return Status::Ok();
}

Result<ScopedFd> ListenUnix(const std::string& path, int backlog) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Result<ScopedFd>::Error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Result<ScopedFd>::Error(Errno("socket(unix)"));
  // A stale socket file from a previous run would make bind fail with
  // EADDRINUSE even though nothing is listening — but only ever remove a
  // SOCKET: a mistyped path must not silently delete someone's file.
  struct stat st;
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      return Result<ScopedFd>::Error(path +
                                     " exists and is not a socket; refusing "
                                     "to replace it");
    }
    ::unlink(path.c_str());
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Result<ScopedFd>::Error(Errno("bind(" + path + ")"));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Result<ScopedFd>::Error(Errno("listen(" + path + ")"));
  }
  return fd;
}

Result<ScopedFd> ListenTcp(const std::string& host, int port,
                           int* actual_port, int backlog) {
  Status port_ok = ValidatePort(port, /*allow_ephemeral=*/true);
  if (!port_ok.ok()) {
    return Result<ScopedFd>::Error("listen: " + port_ok.message());
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string bind_host = host.empty() ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, bind_host.c_str(), &addr.sin_addr) != 1) {
    return Result<ScopedFd>::Error("bad listen address: " + bind_host);
  }

  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Result<ScopedFd>::Error(Errno("socket(tcp)"));
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Result<ScopedFd>::Error(
        Errno("bind(" + bind_host + ":" + std::to_string(port) + ")"));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Result<ScopedFd>::Error(Errno("listen(tcp)"));
  }
  if (actual_port != nullptr) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return Result<ScopedFd>::Error(Errno("getsockname"));
    }
    *actual_port = ntohs(bound.sin_port);
  }
  return fd;
}

Result<ScopedFd> Accept(int listen_fd) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return ScopedFd(fd);
    if (errno == EINTR) continue;
    return Result<ScopedFd>::Error(Errno("accept"));
  }
}

Result<ScopedFd> AcceptWithPeer(int listen_fd, std::string* peer_ip,
                                bool* would_block) {
  if (would_block != nullptr) *would_block = false;
  for (;;) {
    sockaddr_storage peer;
    socklen_t peer_len = sizeof(peer);
    int fd = ::accept(listen_fd, reinterpret_cast<sockaddr*>(&peer),
                      &peer_len);
    if (fd >= 0) {
      if (peer_ip != nullptr) {
        peer_ip->clear();
        if (peer.ss_family == AF_INET) {
          char buf[INET_ADDRSTRLEN];
          const sockaddr_in* in = reinterpret_cast<const sockaddr_in*>(&peer);
          if (::inet_ntop(AF_INET, &in->sin_addr, buf, sizeof(buf))) {
            *peer_ip = buf;
          }
        }
      }
      return ScopedFd(fd);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (would_block != nullptr) *would_block = true;
      return Result<ScopedFd>::Error("accept: would block");
    }
    return Result<ScopedFd>::Error(Errno("accept"));
  }
}

Result<ScopedFd> ConnectUnix(const std::string& path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Result<ScopedFd>::Error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Result<ScopedFd>::Error(Errno("socket(unix)"));
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Result<ScopedFd>::Error(Errno("connect(" + path + ")"));
  }
  return fd;
}

Result<ScopedFd> ConnectTcp(const std::string& host, int port) {
  Status port_ok = ValidatePort(port, /*allow_ephemeral=*/false);
  if (!port_ok.ok()) {
    return Result<ScopedFd>::Error("connect: " + port_ok.message());
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string connect_host = host.empty() ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, connect_host.c_str(), &addr.sin_addr) != 1) {
    return Result<ScopedFd>::Error("bad address: " + connect_host);
  }
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Result<ScopedFd>::Error(Errno("socket(tcp)"));
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Result<ScopedFd>::Error(
        Errno("connect(" + connect_host + ":" + std::to_string(port) + ")"));
  }
  return fd;
}

Status SetNonBlocking(int fd, bool nonblocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::Error(Errno("fcntl(F_GETFL)"));
  int wanted = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags && ::fcntl(fd, F_SETFL, wanted) != 0) {
    return Status::Error(Errno("fcntl(F_SETFL)"));
  }
  return Status::Ok();
}

namespace internal {

Status WriteAllWith(const std::function<ssize_t(const char*, size_t)>& send_fn,
                    const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = send_fn(data.data() + off, data.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      // A zero-length send makes no progress and sets no errno — reporting
      // strerror(errno) here would surface whatever some earlier call left
      // behind. Name the condition instead.
      return Status::Error("send: short write (connection closed)");
    }
    if (errno == EINTR) continue;
    return Status::Error(Errno("send"));
  }
  return Status::Ok();
}

}  // namespace internal

Status WriteAll(int fd, const std::string& data) {
  return internal::WriteAllWith(
      [fd](const char* buf, size_t len) {
        return ::send(fd, buf, len, MSG_NOSIGNAL);
      },
      data);
}

LineDecoder::Event LineDecoder::Next(std::string* line) {
  for (;;) {
    // Binary frames are detected at event boundaries only: a 0x00 marker at
    // the front of the buffer (never mid-line, and never while discarding an
    // oversized text line, where buffer_[0] is oversized-line tail).
    if (allow_binary_ && !discarding_ && !buffer_.empty() &&
        buffer_[0] == kFrameMarker) {
      if (buffer_.size() >= kFrameHeaderBytes) {
        const uint32_t declared =
            (static_cast<uint32_t>(static_cast<unsigned char>(buffer_[1]))
             << 24) |
            (static_cast<uint32_t>(static_cast<unsigned char>(buffer_[2]))
             << 16) |
            (static_cast<uint32_t>(static_cast<unsigned char>(buffer_[3]))
             << 8) |
            static_cast<uint32_t>(static_cast<unsigned char>(buffer_[4]));
        if (declared > max_line_bytes_) {
          *line = "frame declares " + std::to_string(declared) +
                  " bytes (max " + std::to_string(max_line_bytes_) + ")";
          buffer_.clear();
          scanned_ = 0;
          return Event::kBadFrame;
        }
        if (buffer_.size() >= kFrameHeaderBytes + declared) {
          *line = buffer_.substr(kFrameHeaderBytes, declared);
          buffer_.erase(0, kFrameHeaderBytes + declared);
          scanned_ = 0;
          return Event::kFrame;
        }
      }
      if (eof_) {
        *line = "frame truncated by EOF (" + std::to_string(buffer_.size()) +
                " of " +
                (buffer_.size() < kFrameHeaderBytes
                     ? std::string("at least ") +
                           std::to_string(kFrameHeaderBytes)
                     : std::to_string(kFrameHeaderBytes) + "+payload") +
                " bytes buffered)";
        buffer_.clear();
        scanned_ = 0;
        return Event::kBadFrame;
      }
      return Event::kNone;  // partial header or payload: feed more bytes
    }
    // Consume what the buffer already holds.
    size_t nl = buffer_.find('\n', scanned_);
    if (nl != std::string::npos) {
      if (discarding_) {
        // Tail of an oversized line: swallow through the newline and resume
        // normal framing.
        buffer_.erase(0, nl + 1);
        scanned_ = 0;
        discarding_ = false;
        continue;
      }
      // The '\r' of a CR-LF terminator is part of the terminator, not the
      // line: discount it so CR-LF clients get the full content budget.
      const size_t content =
          nl - ((nl > 0 && buffer_[nl - 1] == '\r') ? 1 : 0);
      if (content > max_line_bytes_) {
        // The whole oversized line arrived in one gulp (no incremental
        // overflow was ever seen): still report it, never return it.
        *line = buffer_.substr(0, 64);
        buffer_.erase(0, nl + 1);
        scanned_ = 0;
        return Event::kOversized;
      }
      *line = buffer_.substr(0, content);
      buffer_.erase(0, nl + 1);
      scanned_ = 0;
      return Event::kLine;
    }
    scanned_ = buffer_.size();
    if (discarding_) {
      buffer_.clear();  // still mid-oversized-line: drop and keep reading
      scanned_ = 0;
    } else if (buffer_.size() -
                   ((!buffer_.empty() && buffer_.back() == '\r') ? 1 : 0) >
               max_line_bytes_) {
      // Incremental overflow mid-line. A single trailing '\r' may be a
      // CR-LF terminator whose '\n' has not arrived yet, so it does not
      // count against the cap (a '\r' anywhere else is line content and
      // does). Report once with a short prefix for the error message, then
      // swallow the rest of the line.
      *line = buffer_.substr(0, 64);
      buffer_.clear();
      scanned_ = 0;
      discarding_ = true;
      return Event::kOversized;
    }
    if (eof_) {
      if (!discarding_ && !buffer_.empty()) {
        // Unterminated final line.
        *line = buffer_;
        if (!line->empty() && line->back() == '\r') line->pop_back();
        buffer_.clear();
        scanned_ = 0;
        return Event::kLine;
      }
      return Event::kEof;
    }
    return Event::kNone;
  }
}

LineReader::Event LineReader::ReadLine(std::string* line, std::string* error) {
  for (;;) {
    switch (decoder_.Next(line)) {
      case LineDecoder::Event::kLine:
      case LineDecoder::Event::kFrame:  // unreachable: binary stays off here
        return Event::kLine;
      case LineDecoder::Event::kOversized:
        return Event::kOversized;
      case LineDecoder::Event::kBadFrame:  // unreachable: binary stays off
        *error = *line;
        return Event::kError;
      case LineDecoder::Event::kEof:
        return Event::kEof;
      case LineDecoder::Event::kNone:
        break;  // need more bytes
    }
    char chunk[4096];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      decoder_.Feed(chunk, static_cast<size_t>(n));
    } else if (n == 0) {
      decoder_.SignalEof();
    } else if (errno != EINTR) {
      *error = std::strerror(errno);
      return Event::kError;
    }
  }
}

// --- Poller ---------------------------------------------------------------

struct Poller::Impl {
#if defined(__linux__)
  ScopedFd epoll_fd;
  bool use_epoll = false;
#endif
  // poll(2) fallback state (also the only state off-Linux).
  std::vector<pollfd> poll_fds;
  std::unordered_set<int> watched;
};

Poller::Poller(bool force_poll) : impl_(new Impl) {
#if defined(__linux__)
  if (!force_poll) {
    impl_->epoll_fd = ScopedFd(::epoll_create1(EPOLL_CLOEXEC));
    impl_->use_epoll = impl_->epoll_fd.valid();
  }
#else
  (void)force_poll;
#endif
}

Poller::~Poller() = default;

bool Poller::ok() const {
#if defined(__linux__)
  if (impl_->use_epoll) return impl_->epoll_fd.valid();
#endif
  return true;
}

size_t Poller::watched_fds() const { return impl_->watched.size(); }

Status Poller::Add(int fd) {
  if (impl_->watched.count(fd) > 0) {
    return Status::Error("poller: fd " + std::to_string(fd) +
                         " already watched");
  }
#if defined(__linux__)
  if (impl_->use_epoll) {
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.fd = fd;
    if (::epoll_ctl(impl_->epoll_fd.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
      return Status::Error(Errno("epoll_ctl(ADD)"));
    }
    impl_->watched.insert(fd);
    return Status::Ok();
  }
#endif
  pollfd p;
  std::memset(&p, 0, sizeof(p));
  p.fd = fd;
  p.events = POLLIN;
  impl_->poll_fds.push_back(p);
  impl_->watched.insert(fd);
  return Status::Ok();
}

Status Poller::Remove(int fd) {
  if (impl_->watched.erase(fd) == 0) {
    return Status::Error("poller: fd " + std::to_string(fd) + " not watched");
  }
#if defined(__linux__)
  if (impl_->use_epoll) {
    if (::epoll_ctl(impl_->epoll_fd.get(), EPOLL_CTL_DEL, fd, nullptr) != 0) {
      return Status::Error(Errno("epoll_ctl(DEL)"));
    }
    return Status::Ok();
  }
#endif
  auto& fds = impl_->poll_fds;
  fds.erase(std::remove_if(fds.begin(), fds.end(),
                           [fd](const pollfd& p) { return p.fd == fd; }),
            fds.end());
  return Status::Ok();
}

Result<int> Poller::Wait(std::vector<Ready>* out, int timeout_ms) {
  out->clear();
#if defined(__linux__)
  if (impl_->use_epoll) {
    epoll_event events[64];
    for (;;) {
      int n = ::epoll_wait(impl_->epoll_fd.get(), events, 64, timeout_ms);
      if (n >= 0) {
        for (int i = 0; i < n; ++i) {
          Ready r;
          r.fd = events[i].data.fd;
          if (events[i].events & (EPOLLIN | EPOLLRDHUP)) r.events |= kReadable;
          if (events[i].events & EPOLLHUP) r.events |= kHangup;
          if (events[i].events & EPOLLERR) r.events |= kError;
          out->push_back(r);
        }
        return n;
      }
      if (errno == EINTR) continue;
      return Result<int>::Error(Errno("epoll_wait"));
    }
  }
#endif
  for (;;) {
    int n = ::poll(impl_->poll_fds.empty() ? nullptr : impl_->poll_fds.data(),
                   static_cast<nfds_t>(impl_->poll_fds.size()), timeout_ms);
    if (n >= 0) {
      for (const pollfd& p : impl_->poll_fds) {
        if (p.revents == 0) continue;
        Ready r;
        r.fd = p.fd;
        if (p.revents & POLLIN) r.events |= kReadable;
        if (p.revents & POLLHUP) r.events |= kHangup | kReadable;
        if (p.revents & (POLLERR | POLLNVAL)) r.events |= kError;
        out->push_back(r);
      }
      return static_cast<int>(out->size());
    }
    if (errno == EINTR) continue;
    return Result<int>::Error(Errno("poll"));
  }
}

}  // namespace net
}  // namespace xpathsat
