#include "src/util/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace xpathsat {
namespace net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

void ScopedFd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<ScopedFd> ListenUnix(const std::string& path, int backlog) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Result<ScopedFd>::Error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Result<ScopedFd>::Error(Errno("socket(unix)"));
  // A stale socket file from a previous run would make bind fail with
  // EADDRINUSE even though nothing is listening — but only ever remove a
  // SOCKET: a mistyped path must not silently delete someone's file.
  struct stat st;
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      return Result<ScopedFd>::Error(path +
                                     " exists and is not a socket; refusing "
                                     "to replace it");
    }
    ::unlink(path.c_str());
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Result<ScopedFd>::Error(Errno("bind(" + path + ")"));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Result<ScopedFd>::Error(Errno("listen(" + path + ")"));
  }
  return fd;
}

Result<ScopedFd> ListenTcp(const std::string& host, int port,
                           int* actual_port, int backlog) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string bind_host = host.empty() ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, bind_host.c_str(), &addr.sin_addr) != 1) {
    return Result<ScopedFd>::Error("bad listen address: " + bind_host);
  }

  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Result<ScopedFd>::Error(Errno("socket(tcp)"));
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Result<ScopedFd>::Error(
        Errno("bind(" + bind_host + ":" + std::to_string(port) + ")"));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Result<ScopedFd>::Error(Errno("listen(tcp)"));
  }
  if (actual_port != nullptr) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return Result<ScopedFd>::Error(Errno("getsockname"));
    }
    *actual_port = ntohs(bound.sin_port);
  }
  return fd;
}

Result<ScopedFd> Accept(int listen_fd) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return ScopedFd(fd);
    if (errno == EINTR) continue;
    return Result<ScopedFd>::Error(Errno("accept"));
  }
}

Result<ScopedFd> ConnectUnix(const std::string& path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Result<ScopedFd>::Error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Result<ScopedFd>::Error(Errno("socket(unix)"));
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Result<ScopedFd>::Error(Errno("connect(" + path + ")"));
  }
  return fd;
}

Result<ScopedFd> ConnectTcp(const std::string& host, int port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string connect_host = host.empty() ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, connect_host.c_str(), &addr.sin_addr) != 1) {
    return Result<ScopedFd>::Error("bad address: " + connect_host);
  }
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Result<ScopedFd>::Error(Errno("socket(tcp)"));
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Result<ScopedFd>::Error(
        Errno("connect(" + connect_host + ":" + std::to_string(port) + ")"));
  }
  return fd;
}

Status WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Error(Errno("send"));
  }
  return Status::Ok();
}

LineReader::Event LineReader::ReadLine(std::string* line, std::string* error) {
  for (;;) {
    // Consume what the buffer already holds.
    size_t nl = buffer_.find('\n', scanned_);
    if (nl != std::string::npos) {
      if (discarding_) {
        // Tail of an oversized line: swallow through the newline and resume
        // normal framing.
        buffer_.erase(0, nl + 1);
        scanned_ = 0;
        discarding_ = false;
        continue;
      }
      if (nl > max_line_bytes_) {
        // The whole oversized line arrived in one gulp (no incremental
        // overflow was ever seen): still report it, never return it.
        *line = buffer_.substr(0, 64);
        buffer_.erase(0, nl + 1);
        scanned_ = 0;
        return Event::kOversized;
      }
      *line = buffer_.substr(0, nl);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      buffer_.erase(0, nl + 1);
      scanned_ = 0;
      return Event::kLine;
    }
    scanned_ = buffer_.size();
    if (discarding_) {
      buffer_.clear();  // still mid-oversized-line: drop and keep reading
      scanned_ = 0;
    } else if (buffer_.size() > max_line_bytes_) {
      // Report once with a short prefix for the error message, then swallow
      // the rest of the line.
      *line = buffer_.substr(0, 64);
      buffer_.clear();
      scanned_ = 0;
      discarding_ = true;
      return Event::kOversized;
    }
    if (eof_) {
      if (!discarding_ && !buffer_.empty()) {
        // Unterminated final line.
        *line = buffer_;
        if (!line->empty() && line->back() == '\r') line->pop_back();
        buffer_.clear();
        scanned_ = 0;
        return Event::kLine;
      }
      return Event::kEof;
    }

    char chunk[4096];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
    } else if (n == 0) {
      eof_ = true;
    } else if (errno != EINTR) {
      *error = std::strerror(errno);
      return Event::kError;
    }
  }
}

}  // namespace net
}  // namespace xpathsat
