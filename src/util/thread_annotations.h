// Clang thread-safety-analysis annotation macros (no-ops elsewhere).
//
// These macros attach the project's locking contracts to the types and
// functions that carry them, so a Clang build with
// `-Wthread-safety -Wthread-safety-beta -Werror` PROVES the lock discipline
// at compile time — on every build, before a single test runs, covering cold
// paths no test exercises. GCC (and any compiler without the attributes)
// sees empty macros; the annotations cost nothing at runtime either way.
//
// Usage policy (see README "Static analysis"):
//   * every mutex-guarded field is declared `GUARDED_BY(mu)`;
//   * functions that must be called with a lock held are `REQUIRES(mu)`
//     (hoist lambda-under-lock bodies into such methods — the analysis does
//     not see through captured lambdas);
//   * `NO_THREAD_SAFETY_ANALYSIS` is a last resort and MUST carry a comment
//     justifying why the analysis cannot express the pattern (the invariant
//     linter counts naked mutexes; reviewers police the justifications).
//
// The macro set and spellings follow the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), which is also the
// abseil/LLVM idiom, so the vocabulary is the one reviewers already know.
#ifndef XPATHSAT_UTIL_THREAD_ANNOTATIONS_H_
#define XPATHSAT_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define XPS_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define XPS_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Declares a type to be a capability ("mutex"): lockable state the analysis
/// tracks. Applied to util::Mutex; user code rarely needs it directly.
#define CAPABILITY(x) XPS_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability
/// (util::MutexLock).
#define SCOPED_CAPABILITY XPS_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define GUARDED_BY(x) XPS_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed while holding `x`.
#define PT_GUARDED_BY(x) XPS_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Lock-ordering contracts between mutexes (deadlock prevention).
#define ACQUIRED_BEFORE(...) \
  XPS_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  XPS_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Function may only be called while holding the listed capabilities
/// (exclusively / shared).
#define REQUIRES(...) \
  XPS_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  XPS_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return (and the
/// releasing counterparts).
#define ACQUIRE(...) \
  XPS_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  XPS_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  XPS_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  XPS_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  XPS_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire and reports success as `b`.
#define TRY_ACQUIRE(...) \
  XPS_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  XPS_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called while holding the listed capabilities
/// (it acquires them itself; prevents self-deadlock).
#define EXCLUDES(...) \
  XPS_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define ASSERT_CAPABILITY(x) \
  XPS_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  XPS_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))

/// Function returns a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) \
  XPS_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Opt this function out of the analysis. MUST carry a justification
/// comment — see the usage policy above.
#define NO_THREAD_SAFETY_ANALYSIS \
  XPS_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // XPATHSAT_UTIL_THREAD_ANNOTATIONS_H_
