// Deterministic 64-bit hashing helpers (FNV-1a based). Used for cache keys —
// DTD fingerprints, canonical-query keys — that must be stable across runs
// and platforms (unlike std::hash, which libstdc++/libc++ are free to vary).
#ifndef XPATHSAT_UTIL_HASHING_H_
#define XPATHSAT_UTIL_HASHING_H_

#include <cstdint>
#include <string>

namespace xpathsat {

inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over a byte string, continuing from `seed`.
inline uint64_t FnvHash(const std::string& bytes,
                        uint64_t seed = kFnvOffsetBasis) {
  uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

/// Order-sensitive combination of two hashes (boost::hash_combine style,
/// widened to 64 bits).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// Finalization mix (SplitMix64), used to spread commutatively accumulated
/// sums over the whole 64-bit range.
inline uint64_t HashMix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Accumulates element hashes so that the result is independent of insertion
/// order (sum + xor of mixed values): the fingerprint of a *set* of parts.
class UnorderedHashAccumulator {
 public:
  void Add(uint64_t element_hash) {
    uint64_t m = HashMix(element_hash);
    sum_ += m;
    xor_ ^= m;
    ++count_;
  }
  uint64_t Finish() const {
    return HashMix(HashCombine(HashCombine(sum_, xor_), count_));
  }

 private:
  uint64_t sum_ = 0;
  uint64_t xor_ = 0;
  uint64_t count_ = 0;
};

}  // namespace xpathsat

#endif  // XPATHSAT_UTIL_HASHING_H_
