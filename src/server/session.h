// ServerSession: one client's view of a shared SatEngine, speaking the line
// protocol (src/server/protocol.h). Both front ends sit on this class —
// `xpathsat_cli --serve` feeds it stdin lines, `xpathsat_server` feeds it
// socket lines — so there is exactly one protocol implementation.
//
// Each session owns
//   * a DTD-handle namespace (NAME -> DtdHandle): names are per-connection,
//     but the handles all pin artifacts in the ONE shared engine, so two
//     clients registering the same schema share a compilation and hit each
//     other's verdict memo entries;
//   * an in-flight ticket table (engine ticket id -> SatTicket), which is
//     what makes cancellation externally addressable: `cancel ID` works for
//     any id this session was ack'd for and has not yet seen complete.
//
// Responses are pipelined: `query` answers immediately with `ok query ID`,
// and the result line is emitted later — possibly out of submission order —
// from the engine thread that completes the ticket (via
// SatTicket::OnComplete). There is no per-ticket drain thread anywhere.
//
// Thread-safety: HandleLine must be called from one thread at a time (the
// connection's reader), but the sink is invoked concurrently from engine
// threads; sinks must be internally synchronized. The shared state that
// callbacks touch outlives the session object itself (callbacks keep it
// alive), so tearing a session down while results are in flight is safe —
// Drain() is only needed when the caller wants every result emitted before
// proceeding (flush/quit/EOF).
#ifndef XPATHSAT_SERVER_SESSION_H_
#define XPATHSAT_SERVER_SESSION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/engine/sat_engine.h"
#include "src/server/protocol.h"

namespace xpathsat {
namespace server {

struct SessionOptions {
  /// Per-request deadline cap forwarded to every submitted query (0: none).
  int64_t deadline_ms = 0;
  /// Service traffic wants verdicts; witnesses are off unless a front end
  /// opts in.
  bool compute_witness = false;
  /// In-flight ticket cap per session: a `query` that would exceed it
  /// blocks HandleLine until a completion frees a slot, back-pressuring the
  /// connection (the reader stalls, so the kernel stalls the client's
  /// sends) instead of queueing unbounded work in the shared engine. Must
  /// be >= 1.
  size_t max_inflight = 1024;
  /// Shared secret. When nonempty, the session starts unauthenticated: the
  /// ONLY verbs accepted are `auth SECRET` (right secret -> `ok auth`;
  /// wrong -> `err bad-auth` and the session closes) and `health` (always
  /// unauthenticated, so load balancers can probe without the secret).
  /// Anything else answers `err auth-required` and closes the session.
  std::string auth_secret;
  /// Producer for the `health` reply's JSON object. The socket server
  /// injects one that merges its connection counters with the engine stats;
  /// unset falls back to the engine stats JSON alone.
  std::function<std::string()> health_json;
  /// Producer for the `stats` reply's JSON object. The socket server injects
  /// the same merged object it serves for `health` (single source of truth);
  /// unset falls back to the engine stats JSON alone (the `--serve` shape).
  std::function<std::string()> stats_json;
  /// Producer for the `metrics` reply's JSON object. Unset falls back to the
  /// engine's registry + route counters alone; the socket server injects one
  /// that merges its reactor/queue gauges in.
  std::function<std::string()> metrics_json;
  /// Producer for the `metrics prom` multi-line text exposition (must end
  /// with a "# EOF" line). Same fallback/injection split as metrics_json.
  std::function<std::string()> metrics_prom;
  /// Whether the transport can deliver length-prefixed binary frames (the
  /// socket server's reactor decoder can; --serve's stdin LineReader
  /// cannot). `hello binary` is granted only when set.
  bool binary_frames_supported = false;
};

class ServerSession {
 public:
  /// `sink` emits one reply line (no trailing newline). It is called from
  /// the session's own thread (acks, errors, stats) AND from engine
  /// completion threads (result lines); it must be thread-safe and must not
  /// block indefinitely. `engine` must outlive the session.
  using LineSink = std::function<void(const std::string&)>;

  ServerSession(SatEngine* engine, SessionOptions options, LineSink sink);
  ~ServerSession();  // waits for in-flight results (Drain)

  ServerSession(const ServerSession&) = delete;
  ServerSession& operator=(const ServerSession&) = delete;

  /// Processes one raw request line, emitting any replies through the sink.
  /// Returns false when the session is over (quit); the caller should stop
  /// feeding lines and let the session drain.
  bool HandleLine(const std::string& line);

  /// Full-control variant of HandleLine for transports that frame payloads
  /// themselves: `binary_frame` marks a payload that arrived as a
  /// length-prefixed binary frame (rejected with `err bad-frame` — and the
  /// session closes — unless the client negotiated `hello binary` first);
  /// `decode_ns` is the transport's framing-decode cost for this payload,
  /// stamped onto submitted requests as the trace's wire-decode span.
  bool HandleWire(const std::string& payload, bool binary_frame,
                  uint64_t decode_ns);

  /// Tells the session its input stream ended (EOF/teardown) with no
  /// further lines coming. A batch still collecting members answers one
  /// `err batch-mismatch` — nothing from an incomplete batch is ever
  /// dispatched. Idempotent; emits nothing when no batch is pending.
  void OnInputClosed();

  /// Emits an `err` line through the sink (transport-level errors the
  /// session cannot detect itself, e.g. an oversized line swallowed by the
  /// connection's LineReader).
  void EmitError(const std::string& code, const std::string& detail);

  /// Blocks until every submitted ticket's result line has been emitted.
  void Drain();

  /// Tickets submitted over this session's lifetime.
  uint64_t queries_submitted() const { return queries_submitted_; }

 private:
  struct Shared;  // inflight table + sink; kept alive by result callbacks

  /// Collect state for one `batch N` in progress: members are buffered and
  /// validated here; nothing touches the engine until all N arrived clean.
  struct PendingBatch {
    uint64_t seq = 0;       // per-session batch number (in the ack/done lines)
    uint64_t expected = 0;  // N from `batch N`
    uint64_t received = 0;  // member lines consumed so far (incl. poisoned)
    bool poisoned = false;  // a member failed validation; swallow the rest
    std::string error;      // first violation, for the batch-mismatch detail
    std::vector<protocol::Command> members;
    std::vector<uint64_t> member_decode_ns;
  };

  void HandleCommand(const protocol::Command& command);
  void CollectBatchMember(const protocol::ParseResult& parsed,
                          uint64_t decode_ns);
  void DispatchBatch();

  SatEngine* engine_;
  SessionOptions options_;
  std::shared_ptr<Shared> shared_;
  std::map<std::string, DtdHandle> schemas_;
  uint64_t queries_submitted_ = 0;
  bool closed_ = false;
  bool authed_ = false;  // vacuously true when no secret is configured
  // `hello` grants (both false until negotiated).
  bool batch_granted_ = false;
  bool binary_granted_ = false;
  uint64_t next_batch_seq_ = 1;
  std::unique_ptr<PendingBatch> batch_;  // non-null while collecting members
  // Wire-decode span of the payload currently in HandleWire, stamped onto
  // the request(s) it submits.
  uint64_t current_decode_ns_ = 0;
};

}  // namespace server
}  // namespace xpathsat

#endif  // XPATHSAT_SERVER_SESSION_H_
