#include "src/server/session.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace xpathsat {
namespace server {

namespace {

// Fallback `metrics` render over the engine's registry alone — the --serve
// shape. The socket server injects producers that merge its own reactor and
// queue metrics into the same render.
obs::MetricsRenderInput EngineRenderInput(SatEngine* engine) {
  obs::MetricsRenderInput in;
  in.registries = {&engine->metrics()};
  in.routes = &engine->routes();
  in.uptime_ms = engine->uptime_ms();
  in.snapshot_seq = engine->NextSnapshotSeq();
  return in;
}

}  // namespace

// Result callbacks run on engine threads and may outlive the session object
// by a few instructions (the callback's notify after its erase); everything
// they touch lives here, behind a shared_ptr they hold.
struct ServerSession::Shared {
  LineSink sink;
  util::Mutex mu;
  util::CondVar cv;
  // Engine ticket id -> ticket, while the result line is still owed. This
  // is the cancellation surface: `cancel ID` resolves against this table.
  std::map<uint64_t, SatTicket> inflight GUARDED_BY(mu);
};

ServerSession::ServerSession(SatEngine* engine, SessionOptions options,
                             LineSink sink)
    : engine_(engine),
      options_(std::move(options)),
      shared_(std::make_shared<Shared>()),
      authed_(options_.auth_secret.empty()) {
  shared_->sink = std::move(sink);
}

ServerSession::~ServerSession() { Drain(); }

void ServerSession::EmitError(const std::string& code,
                              const std::string& detail) {
  shared_->sink(protocol::FormatErr(code, detail));
}

void ServerSession::Drain() {
  util::MutexLock lock(shared_->mu);
  while (!shared_->inflight.empty()) shared_->cv.Wait(shared_->mu);
}

bool ServerSession::HandleLine(const std::string& line) {
  if (closed_) return false;
  protocol::ParseResult parsed = protocol::ParseCommandLine(line);
  switch (parsed.status) {
    case protocol::ParseStatus::kEmpty:
      return true;
    case protocol::ParseStatus::kError:
      shared_->sink(parsed.error_line);
      // An unauthenticated peer gets exactly one malformed line before the
      // session ends — no protocol probing without the secret.
      if (!authed_) closed_ = true;
      return !closed_;
    case protocol::ParseStatus::kCommand:
      HandleCommand(parsed.command);
      return !closed_;
  }
  return true;
}

void ServerSession::HandleCommand(const protocol::Command& command) {
  using protocol::Verb;
  // Auth gate: before the secret is presented, only `auth` and `health`
  // exist. Everything else answers a structured error and ends the session
  // (one strike — an unauthenticated peer cannot keep probing verbs).
  if (!authed_ && command.verb != Verb::kAuth &&
      command.verb != Verb::kHealth) {
    EmitError("auth-required",
              std::string(protocol::VerbName(command.verb)) +
                  " before auth; send `auth SECRET` first");
    closed_ = true;
    return;
  }
  switch (command.verb) {
    case Verb::kAuth:
      // With no secret configured, auth is an idempotent no-op so clients
      // may send it unconditionally. A wrong secret always closes the
      // session — even one that already authenticated.
      if (!options_.auth_secret.empty() &&
          command.arg != options_.auth_secret) {
        EmitError("bad-auth", "secret mismatch");
        closed_ = true;
        return;
      }
      authed_ = true;
      shared_->sink("ok auth");
      return;
    case Verb::kHealth:
      // Deliberately unauthenticated: load balancers and liveness probes
      // hit this without the secret.
      shared_->sink("health " +
                    (options_.health_json
                         ? options_.health_json()
                         : protocol::FormatStatsJson(
                               engine_->stats(),
                               engine_->live_dtd_handles())));
      return;
    case Verb::kDtd: {
      std::ifstream in(command.arg);
      if (!in) {
        EmitError("io", "dtd " + command.name + ": cannot open " +
                            command.arg);
        return;
      }
      std::ostringstream text;
      text << in.rdbuf();
      Result<DtdHandle> handle = engine_->RegisterDtdText(text.str());
      if (!handle.ok()) {
        EmitError("dtd-parse", command.name + ": " + handle.error());
        return;
      }
      // Re-registering a name swaps the handle; in-flight requests keep
      // their own pins on the old artifacts.
      schemas_[command.name] = std::move(handle).value();
      shared_->sink(protocol::FormatDtdAck(
          command.name, schemas_[command.name].fingerprint()));
      return;
    }
    case Verb::kQuery: {
      auto it = schemas_.find(command.name);
      if (it == schemas_.end()) {
        EmitError("unknown-dtd", "'" + command.name + "'");
        return;
      }
      {
        // Bound this session's outstanding work: block (back-pressuring
        // the connection) until a completion frees a slot. Every ticket
        // resolves — computed, cancelled, or expired — so this always
        // makes progress.
        const size_t cap =
            options_.max_inflight < 1 ? 1 : options_.max_inflight;
        util::MutexLock lock(shared_->mu);
        while (shared_->inflight.size() >= cap) {
          shared_->cv.Wait(shared_->mu);
        }
      }
      SatRequest request;
      request.query = command.arg;
      request.dtd = it->second;
      request.deadline_ms = options_.deadline_ms;
      request.options.compute_witness = options_.compute_witness;
      SatTicket ticket = engine_->Submit(std::move(request));
      const uint64_t id = ticket.id();
      ++queries_submitted_;
      {
        util::MutexLock lock(shared_->mu);
        shared_->inflight.emplace(id, ticket);
      }
      // Ack first so the client learns the cancellable id before (never
      // after) the result line can possibly arrive.
      shared_->sink(protocol::FormatQueryAck(id));
      ticket.OnComplete([shared = shared_, id,
                         query = command.arg](const SatResponse& response) {
        shared->sink(protocol::FormatResultLine(id, query, response));
        {
          util::MutexLock lock(shared->mu);
          shared->inflight.erase(id);
        }
        shared->cv.NotifyAll();
      });
      return;
    }
    case Verb::kDrop:
      if (schemas_.erase(command.name) > 0) {
        shared_->sink("ok drop " + command.name);
      } else {
        EmitError("unknown-dtd", "'" + command.name + "'");
      }
      return;
    case Verb::kCancel: {
      SatTicket ticket;
      {
        util::MutexLock lock(shared_->mu);
        auto it = shared_->inflight.find(command.ticket_id);
        if (it != shared_->inflight.end()) ticket = it->second;
      }
      if (!ticket.valid()) {
        EmitError("unknown-ticket",
                  std::to_string(command.ticket_id) +
                      " (never acked here, or already completed)");
        return;
      }
      if (engine_->TryCancel(ticket)) {
        // The cancelled ticket still resolves: its result line (algorithm
        // "cancelled") was emitted by the completion callback just now.
        shared_->sink("ok cancel " + std::to_string(command.ticket_id));
      } else {
        EmitError("not-cancellable",
                  std::to_string(command.ticket_id) +
                      " already started or finished");
      }
      return;
    }
    case Verb::kFlush:
      Drain();
      shared_->sink("ok flush");
      return;
    case Verb::kStats:
      // Same injection pattern as health: the socket server serves the
      // merged connection+engine object for both verbs, so `stats` over a
      // socket and `health` never disagree on fields; the fallback is the
      // engine-only object (the `--serve` shape).
      shared_->sink("stats " +
                    (options_.stats_json
                         ? options_.stats_json()
                         : protocol::FormatStatsJson(
                               engine_->stats(),
                               engine_->live_dtd_handles())));
      return;
    case Verb::kMetrics: {
      if (command.arg == "prom") {
        // The exposition is inherently multi-line; the sink contract is one
        // line per call, so split here. The producer guarantees a trailing
        // "# EOF" line, which is the client's end-of-reply marker.
        const std::string text =
            options_.metrics_prom
                ? options_.metrics_prom()
                : obs::RenderMetricsProm(EngineRenderInput(engine_));
        size_t start = 0;
        while (start < text.size()) {
          size_t nl = text.find('\n', start);
          if (nl == std::string::npos) nl = text.size();
          if (nl > start) shared_->sink(text.substr(start, nl - start));
          start = nl + 1;
        }
      } else {
        shared_->sink("metrics " +
                      (options_.metrics_json
                           ? options_.metrics_json()
                           : obs::RenderMetricsJson(
                                 EngineRenderInput(engine_))));
      }
      return;
    }
    case Verb::kSlow:
      // Draining is destructive and engine-global (the log is shared across
      // sessions, like the stats): whichever operator session asks first
      // gets the records.
      shared_->sink("slow " + obs::RenderSlowJson(engine_->DrainSlowLog()));
      return;
    case Verb::kSave: {
      // Drain first so verdicts this session already submitted are in the
      // memo before the walk (other sessions' in-flight work is captured
      // best-effort — the caches are engine-global).
      Drain();
      SnapshotSaveResult saved = engine_->SaveSnapshot(command.arg);
      if (!saved.status.ok()) {
        EmitError("io", "save: " + saved.status.message());
        return;
      }
      shared_->sink("ok save dtds=" + std::to_string(saved.dtds_saved) +
                    " memos=" + std::to_string(saved.memos_saved));
      return;
    }
    case Verb::kLoad: {
      SnapshotLoadResult loaded = engine_->LoadSnapshot(command.arg);
      if (!loaded.status.ok()) {
        switch (loaded.error_kind) {
          case SnapshotLoadResult::ErrorKind::kVersion:
            EmitError("store-version", "load: " + loaded.status.message());
            return;
          case SnapshotLoadResult::ErrorKind::kCorrupt:
            EmitError("store-corrupt", "load: " + loaded.status.message());
            return;
          default:
            EmitError("io", "load: " + loaded.status.message());
            return;
        }
      }
      shared_->sink(
          "ok load dtds=" + std::to_string(loaded.dtds_loaded) +
          " memos=" + std::to_string(loaded.memos_loaded) + " skipped=" +
          std::to_string(loaded.corrupt_records + loaded.rejected_records));
      return;
    }
    case Verb::kQuit:
      Drain();
      shared_->sink("ok quit");
      closed_ = true;
      return;
  }
}

}  // namespace server
}  // namespace xpathsat
