#include "src/server/session.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace xpathsat {
namespace server {

namespace {

// Fallback `metrics` render over the engine's registry alone — the --serve
// shape. The socket server injects producers that merge its own reactor and
// queue metrics into the same render.
obs::MetricsRenderInput EngineRenderInput(SatEngine* engine) {
  obs::MetricsRenderInput in;
  in.registries = {&engine->metrics()};
  in.routes = &engine->routes();
  in.uptime_ms = engine->uptime_ms();
  in.snapshot_seq = engine->NextSnapshotSeq();
  return in;
}

}  // namespace

// Result callbacks run on engine threads and may outlive the session object
// by a few instructions (the callback's notify after its erase); everything
// they touch lives here, behind a shared_ptr they hold.
struct ServerSession::Shared {
  LineSink sink;
  util::Mutex mu;
  util::CondVar cv;
  // Engine ticket id -> ticket, while the result line is still owed. This
  // is the cancellation surface: `cancel ID` resolves against this table.
  std::map<uint64_t, SatTicket> inflight GUARDED_BY(mu);
  // Batch seq -> member results still owed. The callback that decrements a
  // count to zero emits the `ok batch SEQ done` barrier — before erasing
  // its own inflight entry, so Drain() cannot return with a done line still
  // unsent.
  std::map<uint64_t, uint64_t> batch_outstanding GUARDED_BY(mu);
};

ServerSession::ServerSession(SatEngine* engine, SessionOptions options,
                             LineSink sink)
    : engine_(engine),
      options_(std::move(options)),
      shared_(std::make_shared<Shared>()),
      authed_(options_.auth_secret.empty()) {
  shared_->sink = std::move(sink);
}

ServerSession::~ServerSession() { Drain(); }

void ServerSession::EmitError(const std::string& code,
                              const std::string& detail) {
  shared_->sink(protocol::FormatErr(code, detail));
}

void ServerSession::Drain() {
  util::MutexLock lock(shared_->mu);
  while (!shared_->inflight.empty()) shared_->cv.Wait(shared_->mu);
}

bool ServerSession::HandleLine(const std::string& line) {
  return HandleWire(line, /*binary_frame=*/false, /*decode_ns=*/0);
}

bool ServerSession::HandleWire(const std::string& payload, bool binary_frame,
                               uint64_t decode_ns) {
  if (closed_) return false;
  if (binary_frame && !binary_granted_) {
    // A frame before (or without) `hello binary` is a framing violation;
    // close rather than guess where the peer's stream state is.
    EmitError("bad-frame",
              "binary framing not negotiated; send `hello binary` first");
    closed_ = true;
    return false;
  }
  current_decode_ns_ = decode_ns;
  protocol::ParseResult parsed = protocol::ParseCommandLine(payload);
  if (batch_ != nullptr) {
    // Mid-batch, every payload is a member (validated, buffered, never
    // dispatched yet) until all `expected` have been consumed.
    CollectBatchMember(parsed, decode_ns);
    return !closed_;
  }
  switch (parsed.status) {
    case protocol::ParseStatus::kEmpty:
      return true;
    case protocol::ParseStatus::kError:
      shared_->sink(parsed.error_line);
      // An unauthenticated peer gets exactly one malformed line before the
      // session ends — no protocol probing without the secret.
      if (!authed_) closed_ = true;
      return !closed_;
    case protocol::ParseStatus::kCommand:
      HandleCommand(parsed.command);
      return !closed_;
  }
  return true;
}

void ServerSession::OnInputClosed() {
  if (batch_ == nullptr) return;
  EmitError("batch-mismatch",
            "batch " + std::to_string(batch_->seq) + ": input ended after " +
                std::to_string(batch_->received) + " of " +
                std::to_string(batch_->expected) +
                " members; nothing was submitted");
  batch_.reset();
}

void ServerSession::CollectBatchMember(const protocol::ParseResult& parsed,
                                       uint64_t decode_ns) {
  using protocol::ParseStatus;
  using protocol::Verb;
  switch (parsed.status) {
    case ParseStatus::kEmpty:
      // Blank lines and comments are "nothing" everywhere in the protocol;
      // they do not count toward N inside a batch either.
      return;
    case ParseStatus::kError:
      if (!batch_->poisoned) {
        batch_->poisoned = true;
        batch_->error = "member " + std::to_string(batch_->received + 1) +
                        " is malformed (" + parsed.error_line + ")";
      }
      break;
    case ParseStatus::kCommand:
      if (parsed.command.verb != Verb::kQuery) {
        if (!batch_->poisoned) {
          batch_->poisoned = true;
          batch_->error = "member " + std::to_string(batch_->received + 1) +
                          " is '" + protocol::VerbName(parsed.command.verb) +
                          "'; only query/q may appear in a batch";
        }
      } else if (!batch_->poisoned) {
        batch_->members.push_back(parsed.command);
        batch_->member_decode_ns.push_back(decode_ns);
      }
      break;
  }
  ++batch_->received;
  if (batch_->received == batch_->expected) DispatchBatch();
}

void ServerSession::DispatchBatch() {
  std::unique_ptr<PendingBatch> batch = std::move(batch_);
  const std::string seq_text = std::to_string(batch->seq);
  if (!batch->poisoned) {
    // Validate every member's schema before submitting ANY member: a batch
    // either dispatches whole or not at all.
    for (size_t i = 0; i < batch->members.size(); ++i) {
      if (schemas_.find(batch->members[i].name) == schemas_.end()) {
        batch->poisoned = true;
        batch->error = "member " + std::to_string(i + 1) +
                       ": unknown dtd '" + batch->members[i].name + "'";
        break;
      }
    }
  }
  if (batch->poisoned) {
    EmitError("batch-mismatch", "batch " + seq_text + ": " + batch->error +
                                    "; batch discarded, nothing was "
                                    "submitted");
    return;
  }
  const size_t n = batch->members.size();
  {
    // One cap-wait up front for the whole batch (kBatch rejected any N over
    // the cap). Waiting here is safe: earlier submissions' completion
    // callbacks are already attached and will free slots. Between the wait
    // and the last Submit there is no further blocking, so the
    // attach-callbacks-after-ack step below cannot deadlock.
    const size_t cap = options_.max_inflight < 1 ? 1 : options_.max_inflight;
    util::MutexLock lock(shared_->mu);
    while (shared_->inflight.size() + n > cap) {
      shared_->cv.Wait(shared_->mu);
    }
  }
  std::vector<SatTicket> tickets;
  std::vector<uint64_t> ids;
  tickets.reserve(n);
  ids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const protocol::Command& member = batch->members[i];
    SatRequest request;
    request.query = member.arg;
    request.dtd = schemas_.find(member.name)->second;
    request.deadline_ms = options_.deadline_ms;
    request.options.compute_witness = options_.compute_witness;
    request.wire_decode_ns = batch->member_decode_ns[i];
    tickets.push_back(engine_->Submit(std::move(request)));
    ids.push_back(tickets.back().id());
    ++queries_submitted_;
  }
  {
    util::MutexLock lock(shared_->mu);
    for (size_t i = 0; i < n; ++i) {
      shared_->inflight.emplace(ids[i], tickets[i]);
    }
    shared_->batch_outstanding.emplace(batch->seq, n);
  }
  // Ack (with every id) strictly before any result line: callbacks are
  // attached only after the ack is out. A ticket that already completed
  // runs its callback inline right here — still after the ack.
  shared_->sink(protocol::FormatBatchAck(batch->seq, ids));
  for (size_t i = 0; i < n; ++i) {
    const uint64_t id = ids[i];
    tickets[i].OnComplete([shared = shared_, id, seq = batch->seq,
                           query = batch->members[i].arg](
                              const SatResponse& response) {
      shared->sink(protocol::FormatResultLine(id, query, response));
      bool batch_done = false;
      {
        util::MutexLock lock(shared->mu);
        auto it = shared->batch_outstanding.find(seq);
        if (it != shared->batch_outstanding.end() && --it->second == 0) {
          shared->batch_outstanding.erase(it);
          batch_done = true;
        }
      }
      // The done barrier goes out before this (final) member's inflight
      // erase: every member that decremented earlier already emitted its
      // result line, and Drain() keeps the session alive until the erase
      // below — so `ok batch SEQ done` always follows the last result and
      // always precedes teardown.
      if (batch_done) shared->sink(protocol::FormatBatchDone(seq));
      {
        util::MutexLock lock(shared->mu);
        shared->inflight.erase(id);
      }
      shared->cv.NotifyAll();
    });
  }
}

void ServerSession::HandleCommand(const protocol::Command& command) {
  using protocol::Verb;
  // Auth gate: before the secret is presented, only `auth` and `health`
  // exist. Everything else answers a structured error and ends the session
  // (one strike — an unauthenticated peer cannot keep probing verbs).
  if (!authed_ && command.verb != Verb::kAuth &&
      command.verb != Verb::kHealth) {
    EmitError("auth-required",
              std::string(protocol::VerbName(command.verb)) +
                  " before auth; send `auth SECRET` first");
    closed_ = true;
    return;
  }
  switch (command.verb) {
    case Verb::kAuth:
      // With no secret configured, auth is an idempotent no-op so clients
      // may send it unconditionally. A wrong secret always closes the
      // session — even one that already authenticated.
      if (!options_.auth_secret.empty() &&
          command.arg != options_.auth_secret) {
        EmitError("bad-auth", "secret mismatch");
        closed_ = true;
        return;
      }
      authed_ = true;
      shared_->sink("ok auth");
      return;
    case Verb::kHealth:
      // Deliberately unauthenticated: load balancers and liveness probes
      // hit this without the secret. But pre-auth, when a secret is
      // configured, the payload is a minimal liveness object — the full
      // merged stats would hand cache/memo/store counters to any
      // unauthenticated peer.
      if (!authed_ && !options_.auth_secret.empty()) {
        shared_->sink("health {\"status\": \"ok\", \"uptime_ms\": " +
                      std::to_string(engine_->uptime_ms()) + "}");
        return;
      }
      shared_->sink("health " +
                    (options_.health_json
                         ? options_.health_json()
                         : protocol::FormatStatsJson(
                               engine_->stats(),
                               engine_->live_dtd_handles())));
      return;
    case Verb::kHello: {
      // Grant exactly what this transport supports, echoing in request
      // order; a feature missing from the reply was declined. Repeat hellos
      // are fine (grants are sticky once given).
      std::string granted;
      std::string rest = command.arg;
      size_t pos = 0;
      while (pos < rest.size()) {
        size_t space = rest.find(' ', pos);
        if (space == std::string::npos) space = rest.size();
        const std::string feature = rest.substr(pos, space - pos);
        pos = space + 1;
        if (feature == "batch") {
          batch_granted_ = true;
        } else if (feature == "binary") {
          if (!options_.binary_frames_supported) continue;
          binary_granted_ = true;
        }
        if (!granted.empty()) granted += ' ';
        granted += feature;
      }
      shared_->sink(protocol::FormatHelloAck(granted));
      return;
    }
    case Verb::kBatch: {
      if (!batch_granted_) {
        EmitError("batch-mismatch",
                  "batch framing not negotiated; send `hello batch` first");
        return;
      }
      const size_t cap = options_.max_inflight < 1 ? 1 : options_.max_inflight;
      if (command.batch_count > cap) {
        // A batch larger than the in-flight cap could never dispatch whole
        // without blocking between submits; refuse it up front.
        EmitError("batch-mismatch",
                  "batch " + std::to_string(command.batch_count) +
                      " exceeds this session's in-flight cap (" +
                      std::to_string(cap) + ")");
        return;
      }
      batch_.reset(new PendingBatch);
      batch_->seq = next_batch_seq_++;
      batch_->expected = command.batch_count;
      // No ack yet: the ack carries the member ticket ids, so it can only
      // go out after all members arrived, validated, and were submitted.
      return;
    }
    case Verb::kDtd: {
      std::ifstream in(command.arg);
      if (!in) {
        EmitError("io", "dtd " + command.name + ": cannot open " +
                            command.arg);
        return;
      }
      std::ostringstream text;
      text << in.rdbuf();
      Result<DtdHandle> handle = engine_->RegisterDtdText(text.str());
      if (!handle.ok()) {
        EmitError("dtd-parse", command.name + ": " + handle.error());
        return;
      }
      // Re-registering a name swaps the handle; in-flight requests keep
      // their own pins on the old artifacts.
      schemas_[command.name] = std::move(handle).value();
      shared_->sink(protocol::FormatDtdAck(
          command.name, schemas_[command.name].fingerprint()));
      return;
    }
    case Verb::kQuery: {
      auto it = schemas_.find(command.name);
      if (it == schemas_.end()) {
        EmitError("unknown-dtd", "'" + command.name + "'");
        return;
      }
      {
        // Bound this session's outstanding work: block (back-pressuring
        // the connection) until a completion frees a slot. Every ticket
        // resolves — computed, cancelled, or expired — so this always
        // makes progress.
        const size_t cap =
            options_.max_inflight < 1 ? 1 : options_.max_inflight;
        util::MutexLock lock(shared_->mu);
        while (shared_->inflight.size() >= cap) {
          shared_->cv.Wait(shared_->mu);
        }
      }
      SatRequest request;
      request.query = command.arg;
      request.dtd = it->second;
      request.deadline_ms = options_.deadline_ms;
      request.options.compute_witness = options_.compute_witness;
      request.wire_decode_ns = current_decode_ns_;
      SatTicket ticket = engine_->Submit(std::move(request));
      const uint64_t id = ticket.id();
      ++queries_submitted_;
      {
        util::MutexLock lock(shared_->mu);
        shared_->inflight.emplace(id, ticket);
      }
      // Ack first so the client learns the cancellable id before (never
      // after) the result line can possibly arrive.
      shared_->sink(protocol::FormatQueryAck(id));
      ticket.OnComplete([shared = shared_, id,
                         query = command.arg](const SatResponse& response) {
        shared->sink(protocol::FormatResultLine(id, query, response));
        {
          util::MutexLock lock(shared->mu);
          shared->inflight.erase(id);
        }
        shared->cv.NotifyAll();
      });
      return;
    }
    case Verb::kDrop:
      if (schemas_.erase(command.name) > 0) {
        shared_->sink("ok drop " + command.name);
      } else {
        EmitError("unknown-dtd", "'" + command.name + "'");
      }
      return;
    case Verb::kCancel: {
      SatTicket ticket;
      {
        util::MutexLock lock(shared_->mu);
        auto it = shared_->inflight.find(command.ticket_id);
        if (it != shared_->inflight.end()) ticket = it->second;
      }
      if (!ticket.valid()) {
        EmitError("unknown-ticket",
                  std::to_string(command.ticket_id) +
                      " (never acked here, or already completed)");
        return;
      }
      if (engine_->TryCancel(ticket)) {
        // The cancelled ticket still resolves: its result line (algorithm
        // "cancelled") was emitted by the completion callback just now.
        shared_->sink("ok cancel " + std::to_string(command.ticket_id));
      } else {
        EmitError("not-cancellable",
                  std::to_string(command.ticket_id) +
                      " already started or finished");
      }
      return;
    }
    case Verb::kFlush:
      Drain();
      shared_->sink("ok flush");
      return;
    case Verb::kStats:
      // Same injection pattern as health: the socket server serves the
      // merged connection+engine object for both verbs, so `stats` over a
      // socket and `health` never disagree on fields; the fallback is the
      // engine-only object (the `--serve` shape).
      shared_->sink("stats " +
                    (options_.stats_json
                         ? options_.stats_json()
                         : protocol::FormatStatsJson(
                               engine_->stats(),
                               engine_->live_dtd_handles())));
      return;
    case Verb::kMetrics: {
      if (command.arg == "prom") {
        // The exposition is inherently multi-line; the sink contract is one
        // line per call, so split here. The producer guarantees a trailing
        // "# EOF" line, which is the client's end-of-reply marker.
        const std::string text =
            options_.metrics_prom
                ? options_.metrics_prom()
                : obs::RenderMetricsProm(EngineRenderInput(engine_));
        // Every line is forwarded, including blank ones: the wire
        // exposition must match the producer's rendering byte-for-byte
        // (modulo line framing), or scrapers see different content through
        // the socket than through --serve.
        size_t start = 0;
        while (start < text.size()) {
          size_t nl = text.find('\n', start);
          if (nl == std::string::npos) nl = text.size();
          shared_->sink(text.substr(start, nl - start));
          start = nl + 1;
        }
      } else {
        shared_->sink("metrics " +
                      (options_.metrics_json
                           ? options_.metrics_json()
                           : obs::RenderMetricsJson(
                                 EngineRenderInput(engine_))));
      }
      return;
    }
    case Verb::kSlow:
      // Draining is destructive and engine-global (the log is shared across
      // sessions, like the stats): whichever operator session asks first
      // gets the records.
      shared_->sink("slow " + obs::RenderSlowJson(engine_->DrainSlowLog()));
      return;
    case Verb::kSave: {
      // Drain first so verdicts this session already submitted are in the
      // memo before the walk (other sessions' in-flight work is captured
      // best-effort — the caches are engine-global).
      Drain();
      SnapshotSaveResult saved = engine_->SaveSnapshot(command.arg);
      if (!saved.status.ok()) {
        EmitError("io", "save: " + saved.status.message());
        return;
      }
      shared_->sink("ok save dtds=" + std::to_string(saved.dtds_saved) +
                    " memos=" + std::to_string(saved.memos_saved));
      return;
    }
    case Verb::kLoad: {
      SnapshotLoadResult loaded = engine_->LoadSnapshot(command.arg);
      if (!loaded.status.ok()) {
        switch (loaded.error_kind) {
          case SnapshotLoadResult::ErrorKind::kVersion:
            EmitError("store-version", "load: " + loaded.status.message());
            return;
          case SnapshotLoadResult::ErrorKind::kCorrupt:
            EmitError("store-corrupt", "load: " + loaded.status.message());
            return;
          default:
            EmitError("io", "load: " + loaded.status.message());
            return;
        }
      }
      shared_->sink(
          "ok load dtds=" + std::to_string(loaded.dtds_loaded) +
          " memos=" + std::to_string(loaded.memos_loaded) + " skipped=" +
          std::to_string(loaded.corrupt_records + loaded.rejected_records));
      return;
    }
    case Verb::kQuit:
      Drain();
      shared_->sink("ok quit");
      closed_ = true;
      return;
  }
}

}  // namespace server
}  // namespace xpathsat
