#include "src/server/protocol.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace xpathsat {
namespace protocol {

namespace {

/// Strips one leading token (non-whitespace run) from `*rest`; returns it.
/// Leading whitespace is skipped first. Empty return means no token left.
std::string TakeToken(std::string* rest) {
  size_t start = rest->find_first_not_of(" \t");
  if (start == std::string::npos) {
    rest->clear();
    return std::string();
  }
  size_t end = rest->find_first_of(" \t", start);
  std::string token = rest->substr(start, end - start);
  *rest = end == std::string::npos ? std::string() : rest->substr(end);
  return token;
}

std::string TrimmedRemainder(const std::string& rest) {
  size_t start = rest.find_first_not_of(" \t");
  if (start == std::string::npos) return std::string();
  size_t end = rest.find_last_not_of(" \t");
  return rest.substr(start, end - start + 1);
}

ParseResult Error(const std::string& code, const std::string& detail) {
  ParseResult r;
  r.status = ParseStatus::kError;
  r.error_line = FormatErr(code, detail);
  return r;
}

ParseResult BadArgs(Verb verb, const char* usage) {
  return Error("bad-args",
               std::string(VerbName(verb)) + ": usage: " + usage);
}

}  // namespace

const char* VerbName(Verb verb) {
  switch (verb) {
    case Verb::kAuth: return "auth";
    case Verb::kHealth: return "health";
    case Verb::kHello: return "hello";
    case Verb::kDtd: return "dtd";
    case Verb::kQuery: return "query";
    case Verb::kBatch: return "batch";
    case Verb::kDrop: return "drop";
    case Verb::kCancel: return "cancel";
    case Verb::kFlush: return "flush";
    case Verb::kStats: return "stats";
    case Verb::kMetrics: return "metrics";
    case Verb::kSlow: return "slow";
    case Verb::kSave: return "save";
    case Verb::kLoad: return "load";
    case Verb::kQuit: return "quit";
  }
  return "?";
}

const char* VerdictName(const SatResponse& response) {
  if (!response.status.ok()) return "error";
  switch (response.report.decision.verdict) {
    case SatVerdict::kSat: return "sat";
    case SatVerdict::kUnsat: return "unsat";
    case SatVerdict::kUnknown: return "unknown";
  }
  return "unknown";
}

ParseResult ParseCommandLine(const std::string& line) {
  if (line.size() > kMaxLineBytes) {
    return Error("oversized-line",
                 std::to_string(line.size()) + " bytes (max " +
                     std::to_string(kMaxLineBytes) + ")");
  }
  std::string rest = line;
  // Tolerate CR-LF input and trailing whitespace.
  while (!rest.empty() && (rest.back() == '\r' || rest.back() == ' ' ||
                           rest.back() == '\t')) {
    rest.pop_back();
  }
  std::string verb_text = TakeToken(&rest);
  if (verb_text.empty() || verb_text[0] == '#') {
    ParseResult r;
    r.status = ParseStatus::kEmpty;
    return r;
  }

  ParseResult r;
  r.status = ParseStatus::kCommand;
  Command& cmd = r.command;
  if (verb_text == "auth") {
    cmd.verb = Verb::kAuth;
    // The secret is the whole remainder, so secrets may contain spaces;
    // empty is malformed (an auth-less server wants no auth line at all).
    cmd.arg = TrimmedRemainder(rest);
    if (cmd.arg.empty()) {
      return BadArgs(Verb::kAuth, "auth SECRET");
    }
  } else if (verb_text == "health") {
    cmd.verb = Verb::kHealth;
    if (!TrimmedRemainder(rest).empty()) {
      return BadArgs(Verb::kHealth, "health");
    }
  } else if (verb_text == "hello") {
    cmd.verb = Verb::kHello;
    // Zero or more feature tokens, each `batch` or `binary`, no repeats.
    // The canonical form preserves request order (`hello binary batch`
    // round-trips as-is).
    bool saw_batch = false;
    bool saw_binary = false;
    for (;;) {
      std::string token = TakeToken(&rest);
      if (token.empty()) break;
      bool duplicate = (token == "batch" && saw_batch) ||
                       (token == "binary" && saw_binary);
      if ((token != "batch" && token != "binary") || duplicate) {
        return BadArgs(Verb::kHello, "hello [batch] [binary]");
      }
      if (token == "batch") saw_batch = true;
      if (token == "binary") saw_binary = true;
      if (!cmd.arg.empty()) cmd.arg += ' ';
      cmd.arg += token;
    }
  } else if (verb_text == "dtd") {
    cmd.verb = Verb::kDtd;
    cmd.name = TakeToken(&rest);
    cmd.arg = TrimmedRemainder(rest);
    if (cmd.name.empty() || cmd.arg.empty()) {
      return BadArgs(Verb::kDtd, "dtd NAME PATH");
    }
  } else if (verb_text == "query" || verb_text == "q") {
    cmd.verb = Verb::kQuery;
    cmd.name = TakeToken(&rest);
    cmd.arg = TrimmedRemainder(rest);
    if (cmd.name.empty() || cmd.arg.empty()) {
      return BadArgs(Verb::kQuery, "query NAME XPATH");
    }
  } else if (verb_text == "drop") {
    cmd.verb = Verb::kDrop;
    cmd.name = TakeToken(&rest);
    if (cmd.name.empty() || !TrimmedRemainder(rest).empty()) {
      return BadArgs(Verb::kDrop, "drop NAME");
    }
  } else if (verb_text == "cancel") {
    cmd.verb = Verb::kCancel;
    std::string id_text = TakeToken(&rest);
    if (id_text.empty() || !TrimmedRemainder(rest).empty()) {
      return BadArgs(Verb::kCancel, "cancel TICKET-ID");
    }
    errno = 0;
    char* end = nullptr;
    unsigned long long id = std::strtoull(id_text.c_str(), &end, 10);
    if (errno != 0 || end == id_text.c_str() || *end != '\0' ||
        id_text[0] == '-' || id_text[0] == '+' || id == 0) {
      return Error("bad-args", "cancel: '" + id_text +
                                   "' is not a positive ticket id");
    }
    cmd.ticket_id = id;
  } else if (verb_text == "batch") {
    cmd.verb = Verb::kBatch;
    std::string count_text = TakeToken(&rest);
    if (count_text.empty() || !TrimmedRemainder(rest).empty()) {
      return BadArgs(Verb::kBatch, "batch N");
    }
    errno = 0;
    char* end = nullptr;
    unsigned long long count = std::strtoull(count_text.c_str(), &end, 10);
    if (errno != 0 || end == count_text.c_str() || *end != '\0' ||
        count_text[0] == '-' || count_text[0] == '+' || count == 0) {
      return Error("bad-args", "batch: '" + count_text +
                                   "' is not a positive request count");
    }
    if (count > kMaxBatchRequests) {
      return Error("bad-args",
                   "batch: " + count_text + " requests (max " +
                       std::to_string(kMaxBatchRequests) + ")");
    }
    cmd.batch_count = count;
  } else if (verb_text == "metrics") {
    cmd.verb = Verb::kMetrics;
    // Bare `metrics` answers one JSON line; the only recognised mode
    // argument is `prom` (the multi-line text exposition).
    cmd.arg = TrimmedRemainder(rest);
    if (!cmd.arg.empty() && cmd.arg != "prom") {
      return BadArgs(Verb::kMetrics, "metrics [prom]");
    }
  } else if (verb_text == "save" || verb_text == "load") {
    cmd.verb = verb_text == "save" ? Verb::kSave : Verb::kLoad;
    // The path is the whole remainder (paths may contain spaces).
    cmd.arg = TrimmedRemainder(rest);
    if (cmd.arg.empty()) {
      return BadArgs(cmd.verb,
                     cmd.verb == Verb::kSave ? "save PATH" : "load PATH");
    }
  } else if (verb_text == "flush" || verb_text == "stats" ||
             verb_text == "slow" || verb_text == "quit") {
    cmd.verb = verb_text == "flush"
                   ? Verb::kFlush
                   : (verb_text == "stats"
                          ? Verb::kStats
                          : (verb_text == "slow" ? Verb::kSlow : Verb::kQuit));
    if (!TrimmedRemainder(rest).empty()) {
      return BadArgs(cmd.verb, verb_text.c_str());
    }
  } else {
    return Error("unknown-verb", "'" + verb_text + "'");
  }
  return r;
}

std::string FormatCommand(const Command& command) {
  switch (command.verb) {
    case Verb::kAuth:
      return "auth " + command.arg;
    case Verb::kHealth:
      return "health";
    case Verb::kHello:
      return command.arg.empty() ? "hello" : "hello " + command.arg;
    case Verb::kDtd:
      return "dtd " + command.name + " " + command.arg;
    case Verb::kQuery:
      return "query " + command.name + " " + command.arg;
    case Verb::kBatch:
      return "batch " + std::to_string(command.batch_count);
    case Verb::kDrop:
      return "drop " + command.name;
    case Verb::kCancel:
      return "cancel " + std::to_string(command.ticket_id);
    case Verb::kFlush:
      return "flush";
    case Verb::kStats:
      return "stats";
    case Verb::kMetrics:
      return command.arg.empty() ? "metrics" : "metrics " + command.arg;
    case Verb::kSlow:
      return "slow";
    case Verb::kSave:
      return "save " + command.arg;
    case Verb::kLoad:
      return "load " + command.arg;
    case Verb::kQuit:
      return "quit";
  }
  return std::string();
}

std::string FormatErr(const std::string& code, const std::string& detail) {
  return "err " + code + " " + detail;
}

std::string FormatDtdAck(const std::string& name, uint64_t fingerprint) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return "ok dtd " + name + " fp=" + buf;
}

std::string FormatQueryAck(uint64_t ticket_id) {
  return "ok query " + std::to_string(ticket_id);
}

std::string FormatHelloAck(const std::string& granted) {
  return granted.empty() ? "ok hello" : "ok hello " + granted;
}

std::string FormatBatchAck(uint64_t seq, const std::vector<uint64_t>& ids) {
  std::string line = "ok batch " + std::to_string(seq) + " ids";
  for (uint64_t id : ids) {
    line += ' ';
    line += std::to_string(id);
  }
  return line;
}

std::string FormatBatchDone(uint64_t seq) {
  return "ok batch " + std::to_string(seq) + " done";
}

std::string EncodeFrame(const std::string& payload) {
  std::string frame;
  frame.reserve(payload.size() + 5);
  frame.push_back('\0');
  const uint32_t n = static_cast<uint32_t>(payload.size());
  frame.push_back(static_cast<char>((n >> 24) & 0xff));
  frame.push_back(static_cast<char>((n >> 16) & 0xff));
  frame.push_back(static_cast<char>((n >> 8) & 0xff));
  frame.push_back(static_cast<char>(n & 0xff));
  frame += payload;
  return frame;
}

std::string FormatResultLine(uint64_t ticket_id, const std::string& query,
                             const SatResponse& response) {
  char head[32];
  std::snprintf(head, sizeof(head), "%llu [%-7s] ",
                static_cast<unsigned long long>(ticket_id),
                VerdictName(response));
  if (!response.status.ok()) {
    return head + query + " -- " + response.status.message();
  }
  char tail[64];
  std::snprintf(tail, sizeof(tail), " %.1fus", response.elapsed_us);
  return head + query + " -- " + response.report.algorithm + tail +
         (response.query_cache_hit ? " q-cached" : "") +
         (response.memo_hit ? " memo" : "");
}

std::string FormatStatsJson(const SatEngineStats& stats,
                            uint64_t live_dtd_handles) {
  std::ostringstream out;
  out << "{\"requests\": " << stats.requests
      << ", \"dtd_cache_hits\": " << stats.dtd_cache_hits
      << ", \"dtd_cache_misses\": " << stats.dtd_cache_misses
      << ", \"query_cache_hits\": " << stats.query_cache_hits
      << ", \"query_cache_misses\": " << stats.query_cache_misses
      << ", \"memo_hits\": " << stats.memo_hits
      << ", \"memo_misses\": " << stats.memo_misses
      << ", \"rewrite_cache_hits\": " << stats.rewrite_cache_hits
      << ", \"rewrite_cache_misses\": " << stats.rewrite_cache_misses
      << ", \"parse_errors\": " << stats.parse_errors
      << ", \"cancellations\": " << stats.cancellations
      << ", \"deadline_expirations\": " << stats.deadline_expirations
      << ", \"store_dtds_loaded\": " << stats.store_dtds_loaded
      << ", \"store_memos_loaded\": " << stats.store_memos_loaded
      << ", \"store_records_corrupt\": " << stats.store_records_corrupt
      << ", \"store_records_rejected\": " << stats.store_records_rejected
      << ", \"store_version_rejects\": " << stats.store_version_rejects
      << ", \"uptime_ms\": " << stats.uptime_ms
      << ", \"snapshot_seq\": " << stats.snapshot_seq
      << ", \"live_dtd_handles\": " << live_dtd_handles << "}";
  return out.str();
}

std::string FormatStatsLine(const SatEngineStats& stats,
                            uint64_t live_dtd_handles) {
  return "stats " + FormatStatsJson(stats, live_dtd_handles);
}

}  // namespace protocol
}  // namespace xpathsat
