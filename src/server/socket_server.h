// SocketServer: the network front end over one long-lived SatEngine.
//
// Listens on a unix-domain socket and/or a TCP port and speaks the shared
// line protocol (src/server/protocol.h). Every accepted connection gets its
// own ServerSession — its own DTD-name namespace and in-flight ticket table
// — but all sessions share the ONE engine, so its compiled-DTD cache, query
// cache, and verdict memo are shared across clients: client B gets memo
// hits on traffic client A already decided.
//
// Concurrency model: a single REACTOR thread owns readiness and framing —
// an epoll (poll(2) fallback) event loop that accepts, reads nonblockingly,
// decodes lines, enforces the idle-timeout timer wheel, the connection cap,
// and per-IP accept throttling. Decoded lines are handed to a fixed worker
// pool through a bounded queue (one token per connection needing service,
// so per-connection line order is preserved and a connection is never
// handled by two workers at once). Result lines are NOT written by either —
// they are pipelined out of order by the engine threads that complete each
// ticket, through the session's completion callbacks, serialized per
// connection by a write mutex.
//
// This is what makes 10k idle connections on one process possible: an idle
// connection costs one fd and a timer-wheel slot, not a thread.
//
// Lifecycle: construct -> Start() -> ... -> Stop() (idempotent; also run by
// the destructor). The engine must outlive Stop(). Stop shuts every
// connection down, which drains each session — in-flight requests complete
// and their result lines are flushed before the sockets close.
#ifndef XPATHSAT_SERVER_SOCKET_SERVER_H_
#define XPATHSAT_SERVER_SOCKET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/engine/sat_engine.h"
#include "src/obs/metrics.h"
#include "src/server/protocol.h"
#include "src/server/session.h"
#include "src/util/bounded_queue.h"
#include "src/util/mutex.h"
#include "src/util/net.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace xpathsat {
namespace server {

struct SocketServerOptions {
  /// Unix-domain listener path; empty disables. Prefer short relative paths
  /// (sockaddr_un caps ~107 bytes).
  std::string unix_path;
  /// TCP listener port; -1 disables, 0 binds an ephemeral port (read it
  /// back from tcp_port() after Start).
  int tcp_port = -1;
  /// TCP bind address; loopback by default — binding wider than loopback is
  /// an explicit caller decision (pair it with auth_secret).
  std::string tcp_host = "127.0.0.1";
  /// Forwarded to every connection's session (auth_secret and health_json
  /// below override the corresponding session fields).
  SessionOptions session;
  /// Per-line byte cap before a connection's input is answered with
  /// `err oversized-line` and discarded to the next newline.
  size_t max_line_bytes = protocol::kMaxLineBytes;

  // --- production hardening -----------------------------------------------

  /// Cap on live connections; an accept beyond it is answered with one
  /// `err busy ...` line and closed. 0: unlimited.
  size_t max_connections = 0;
  /// A connection with no traffic (reads or result writes) for this long is
  /// evicted with `err idle-timeout ...`. 0: never.
  int64_t idle_timeout_ms = 0;
  /// Shared secret: when nonempty every connection must present
  /// `auth SECRET` before its first verb (`health` stays open for load
  /// balancers).
  std::string auth_secret;
  /// Per-IP accept throttle for TCP connections (token bucket, refilled at
  /// this rate, burst = the same value): an accept beyond it is answered
  /// with `err throttled ...` and closed. 0: off. Unix-domain connections
  /// are exempt (no peer address to bucket).
  int tcp_accepts_per_ip_per_sec = 0;
  /// Session worker pool size; 0 picks hardware_concurrency clamped to
  /// [2, 8]. These workers run HandleLine (parse + submit + acks); the
  /// engine's own pool does the deciding.
  int worker_threads = 0;
};

class SocketServer {
 public:
  /// `engine` must outlive Stop().
  SocketServer(SatEngine* engine, SocketServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Opens the configured listeners and starts the reactor and workers.
  /// Fails (and opens nothing — a partially-bound unix socket file is
  /// unlinked again) when no listener is configured or a bind fails.
  Status Start();

  /// Stops accepting, shuts down every connection (sessions drain their
  /// in-flight tickets first), and joins all threads. Idempotent, and —
  /// crucially for shutdown-path actions like `--save-on-exit` — every
  /// caller returns only after the stop is COMPLETE: a Stop() racing
  /// another Stop(), or racing the reactor's own poller-failure self-stop
  /// mid-accept, waits for the teardown instead of returning while threads
  /// are still serving.
  void Stop();

  /// Bound TCP port after Start (useful with tcp_port = 0); -1 when no TCP
  /// listener.
  int tcp_port() const { return bound_tcp_port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  /// Connections actually admitted to service (rejected/throttled/stop-race
  /// accepts are NOT counted here — see connections_rejected()).
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  /// Admitted connections not yet torn down.
  uint64_t connections_active() const {
    return connections_active_.load(std::memory_order_relaxed);
  }
  /// Accepts answered `err busy` (max_connections cap).
  uint64_t connections_rejected() const {
    return connections_rejected_.load(std::memory_order_relaxed);
  }
  /// Accepts answered `err throttled` (per-IP rate).
  uint64_t connections_throttled() const {
    return connections_throttled_.load(std::memory_order_relaxed);
  }
  /// Connections evicted by the idle timeout.
  uint64_t idle_evictions() const {
    return idle_evictions_.load(std::memory_order_relaxed);
  }

  /// The `health` reply's JSON object: server connection counters plus the
  /// engine stats (also what load balancers poll). The socket-served `stats`
  /// verb answers this same object — one source of truth for both.
  std::string HealthJson() const;

  /// The `metrics` reply's JSON object: engine histograms/routes merged
  /// with the server's reactor-loop and worker-queue metrics (connection
  /// counters mirrored in as gauges at snapshot time).
  std::string MetricsJson();
  /// The `metrics prom` multi-line text exposition over the same merged
  /// inputs; ends with a "# EOF" line.
  std::string MetricsProm();

 private:
  // Per-connection write-side state, shared between the session's output
  // sink (runs on engine completion threads) and the teardown path. The
  // first failed/timed-out write latches `dead`; every later write is
  // skipped instead of paying the send timeout again.
  struct WriteState {
    util::Mutex mu;
    bool dead GUARDED_BY(mu) = false;
  };

  // One admitted connection. Field groups by owner:
  //  * reactor-only: poller/wheel bookkeeping — never touched off the
  //    reactor thread
  //  * work_mu: the reactor->worker hand-off (pending lines + flags),
  //    GUARDED_BY so a Clang -Wthread-safety build proves the hand-off
  //  * shared: fd (stable until destruction), session (created at admit,
  //    destroyed by the tearing-down worker), write/activity state (any
  //    thread, internally synchronized)
  //
  // Defined here (not in the .cc) so lock-held helpers like ScheduleLocked
  // can spell their REQUIRES(conn->work_mu) contract on the declaration.
  struct Connection {
    explicit Connection(size_t max_line_bytes) : decoder(max_line_bytes) {}

    net::ScopedFd fd;
    bool is_tcp = false;
    std::string peer_ip;
    net::LineDecoder decoder;  // reactor thread only
    std::unique_ptr<ServerSession> session;
    std::shared_ptr<WriteState> write_state = std::make_shared<WriteState>();
    // Stamped by the reactor on reads and by completion threads on result
    // writes; the timer wheel consults it before evicting, so a connection
    // only waiting on long decisions (results still streaming out) is not
    // "idle".
    std::shared_ptr<std::atomic<int64_t>> last_activity_ms =
        std::make_shared<std::atomic<int64_t>>(0);

    struct PendingLine {
      std::string text;
      bool oversized = false;
      // Payload arrived as a length-prefixed binary frame (the session
      // enforces that `hello binary` was negotiated).
      bool binary = false;
      // Malformed binary frame: `text` holds the decoder's detail message;
      // the worker answers `err bad-frame` and the connection closes (a
      // binary stream cannot resync).
      bool bad_frame = false;
      // Reactor-measured framing-decode cost for this payload, stamped
      // into the request trace as the wire-decode span.
      uint64_t decode_ns = 0;
    };

    // When the connection's current worker-queue token was pushed; read by
    // the popping worker to record the queue-wait histogram.
    std::atomic<int64_t> enqueued_at_ns{0};

    util::Mutex work_mu;
    std::deque<PendingLine> pending GUARDED_BY(work_mu);
    size_t pending_bytes GUARDED_BY(work_mu) = 0;
    // a queue token exists or a worker is active
    bool scheduled GUARDED_BY(work_mu) = false;
    // the reactor will feed no more lines
    bool input_closed GUARDED_BY(work_mu) = false;
    // teardown should emit err idle-timeout
    bool timed_out GUARDED_BY(work_mu) = false;
    // reactor removed the fd from the poller
    bool paused GUARDED_BY(work_mu) = false;
    // session destroyed; retire pending
    bool torn_down GUARDED_BY(work_mu) = false;

    // Reactor-only bookkeeping.
    bool in_poller = false;
    size_t wheel_bucket = SIZE_MAX;
    std::list<Connection*>::iterator wheel_pos;
  };

  struct Listener {
    net::ScopedFd fd;
    bool is_tcp = false;
  };
  struct IpBucket {
    double tokens = 0;
    int64_t last_ms = 0;
  };

  // Reactor side (all on the reactor thread unless noted).
  void ReactorLoop();
  void AcceptReady(const Listener& listener);
  void AdmitConnection(net::ScopedFd fd, bool is_tcp,
                       const std::string& peer_ip);
  void ReadReady(const std::shared_ptr<Connection>& conn);
  void CloseInput(const std::shared_ptr<Connection>& conn, bool timed_out);
  void ScheduleLocked(const std::shared_ptr<Connection>& conn)
      REQUIRES(conn->work_mu);
  void DrainControl();
  void BeginShutdown();
  bool ThrottleAllows(const std::string& peer_ip, int64_t now_ms);

  // Timer wheel (reactor thread).
  void WheelInsert(Connection* conn, int64_t expire_in_ms);
  void WheelRemove(Connection* conn);
  void AdvanceWheel(int64_t now_ms);

  // Worker side.
  void WorkerLoop();
  void ProcessConnection(const std::shared_ptr<Connection>& conn);
  void TearDown(const std::shared_ptr<Connection>& conn, bool timed_out);

  // Any thread.
  void Wake();

  // Observability plumbing (metrics definitions in the ctor).
  obs::MetricsRenderInput BuildRenderInput();
  void MirrorConnectionGauges();

  SatEngine* engine_;
  SocketServerOptions options_;
  int bound_tcp_port_ = -1;
  // Whether ListenUnix actually bound (and thus created) the socket file:
  // only ever unlink what Start created — never a pre-existing path a
  // failed Start refused to touch.
  bool unix_bound_ = false;

  std::vector<Listener> listeners_;
  net::ScopedFd wake_read_;
  net::ScopedFd wake_write_;
  std::unique_ptr<net::Poller> poller_;
  std::thread reactor_thread_;
  std::vector<std::thread> worker_threads_;
  std::unique_ptr<BoundedQueue<std::shared_ptr<Connection>>> work_queue_;

  // Reactor-thread state.
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;
  std::unordered_map<std::string, IpBucket> ip_buckets_;
  std::vector<std::list<Connection*>> wheel_;
  size_t wheel_cursor_ = 0;
  size_t wheel_span_ticks_ = 0;
  int64_t wheel_tick_ms_ = 0;
  int64_t next_tick_at_ms_ = 0;
  bool shutdown_begun_ = false;

  // Cross-thread control hand-off to the reactor (retired connections to
  // erase, drained connections whose reads should resume).
  util::Mutex ctrl_mu_;
  std::vector<std::shared_ptr<Connection>> ctrl_retired_
      GUARDED_BY(ctrl_mu_);
  std::vector<std::shared_ptr<Connection>> ctrl_resumable_
      GUARDED_BY(ctrl_mu_);

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  // Serializes the teardown itself: the winner joins threads holding
  // stop_mu_, so a concurrent (or repeated) Stop() blocks until stopped_
  // flips rather than returning from the stopping_ gate while the server
  // is still live.
  util::Mutex stop_mu_;
  bool stopped_ GUARDED_BY(stop_mu_) = false;
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_active_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> connections_throttled_{0};
  std::atomic<uint64_t> idle_evictions_{0};

  // Server-side metrics: worker-queue depth/wait and reactor-loop busy time,
  // mutated lock-free on the serving paths through pre-resolved pointers.
  obs::MetricsRegistry metrics_;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Histogram* queue_wait_hist_ = nullptr;
  obs::Histogram* reactor_busy_hist_ = nullptr;
};

}  // namespace server
}  // namespace xpathsat

#endif  // XPATHSAT_SERVER_SOCKET_SERVER_H_
