// SocketServer: the network front end over one long-lived SatEngine.
//
// Listens on a unix-domain socket and/or a loopback TCP port and speaks the
// shared line protocol (src/server/protocol.h). Every accepted connection
// gets its own ServerSession — its own DTD-name namespace and in-flight
// ticket table — but all sessions share the ONE engine, so its compiled-DTD
// cache, query cache, and verdict memo are shared across clients: client B
// gets memo hits on traffic client A already decided.
//
// Concurrency model: one accept thread per listener plus one reader thread
// per connection (finished connections are reaped as new ones arrive).
// Result lines are NOT written by the reader thread — they are pipelined
// out of order by the engine threads that complete each ticket, through the
// session's completion callbacks, serialized per connection by a write
// mutex. A connection doing a large batch therefore has results streaming
// back while its reader is still parsing requests.
//
// Thread-per-connection is deliberate: sessions are few and long-lived
// (clients multiplex many requests over one connection), so the scaling
// pressure is on the engine, not the socket layer.
//
// Lifecycle: construct -> Start() -> ... -> Stop() (idempotent; also run by
// the destructor). The engine must outlive Stop(). Stop shuts every
// connection down, which drains each session — in-flight requests complete
// and their result lines are flushed before the sockets close.
#ifndef XPATHSAT_SERVER_SOCKET_SERVER_H_
#define XPATHSAT_SERVER_SOCKET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/sat_engine.h"
#include "src/server/protocol.h"
#include "src/server/session.h"
#include "src/util/net.h"
#include "src/util/status.h"

namespace xpathsat {
namespace server {

struct SocketServerOptions {
  /// Unix-domain listener path; empty disables. Prefer short relative paths
  /// (sockaddr_un caps ~107 bytes).
  std::string unix_path;
  /// TCP listener port; -1 disables, 0 binds an ephemeral port (read it
  /// back from tcp_port() after Start).
  int tcp_port = -1;
  /// TCP bind address; loopback by default — this server has no auth layer,
  /// so binding wider than loopback is an explicit caller decision.
  std::string tcp_host = "127.0.0.1";
  /// Forwarded to every connection's session.
  SessionOptions session;
  /// Per-line byte cap before a connection's input is answered with
  /// `err oversized-line` and discarded to the next newline.
  size_t max_line_bytes = protocol::kMaxLineBytes;
};

class SocketServer {
 public:
  /// `engine` must outlive Stop().
  SocketServer(SatEngine* engine, SocketServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Opens the configured listeners and starts accepting. Fails (and opens
  /// nothing) when no listener is configured or a bind fails.
  Status Start();

  /// Stops accepting, shuts down every connection (sessions drain their
  /// in-flight tickets first), and joins all threads. Idempotent.
  void Stop();

  /// Bound TCP port after Start (useful with tcp_port = 0); -1 when no TCP
  /// listener.
  int tcp_port() const { return bound_tcp_port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t connections_active() const {
    return connections_active_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    net::ScopedFd fd;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop(int listen_fd);
  void ServeConnection(Connection* connection);
  void ReapFinishedLocked();

  SatEngine* engine_;
  SocketServerOptions options_;
  int bound_tcp_port_ = -1;
  // Whether ListenUnix actually bound (and thus created) the socket file:
  // Stop must only unlink what Start created — never a pre-existing path a
  // failed Start refused to touch.
  bool unix_bound_ = false;

  std::vector<net::ScopedFd> listeners_;
  std::vector<std::thread> accept_threads_;

  std::mutex conn_mu_;
  std::list<Connection> connections_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_active_{0};
};

}  // namespace server
}  // namespace xpathsat

#endif  // XPATHSAT_SERVER_SOCKET_SERVER_H_
