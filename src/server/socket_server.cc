#include "src/server/socket_server.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <sstream>
#include <utility>

namespace xpathsat {
namespace server {

namespace {

// Cap on how long one reply write may block an engine completion thread
// behind a client that stopped reading. After one expiry the connection is
// latched dead and every further write is skipped, so a stuck client costs
// the engine at most this once.
constexpr int kSendTimeoutSeconds = 10;

// Backpressure: the reactor stops reading a connection whose decoded-but-
// unserviced lines exceed either bound, and resumes when a worker drains
// them — the kernel socket buffer then fills and the client's sends stall,
// exactly like the old blocking reader, but without a thread per connection.
constexpr size_t kPauseAfterPendingLines = 1024;
constexpr size_t kPauseAfterPendingBytes = 1 << 20;

// Per-readiness-event read budget, so one firehose connection cannot starve
// the rest of the event loop (level-triggered: the remainder re-reports).
constexpr size_t kReadBudgetBytes = 256 * 1024;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SocketServer::SocketServer(SatEngine* engine, SocketServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  queue_depth_ = metrics_.gauge("worker_queue_depth");
  queue_wait_hist_ = metrics_.histogram("worker_queue_wait_ns");
  reactor_busy_hist_ = metrics_.histogram("reactor_loop_busy_ns");
}

SocketServer::~SocketServer() { Stop(); }

std::string SocketServer::HealthJson() const {
  std::ostringstream out;
  out << "{\"status\": \"ok\""
      << ", \"connections_active\": " << connections_active()
      << ", \"connections_accepted\": " << connections_accepted()
      << ", \"connections_rejected\": " << connections_rejected()
      << ", \"connections_throttled\": " << connections_throttled()
      << ", \"idle_evictions\": " << idle_evictions()
      << ", \"engine\": "
      << protocol::FormatStatsJson(engine_->stats(),
                                   engine_->live_dtd_handles())
      << "}";
  return out.str();
}

void SocketServer::MirrorConnectionGauges() {
  // Snapshot-time mirror so scrapers get the connection counters in the same
  // exposition as the histograms; the relaxed atomics stay the live source.
  metrics_.gauge("connections_active")
      ->Set(static_cast<int64_t>(connections_active()));
  metrics_.gauge("connections_accepted")
      ->Set(static_cast<int64_t>(connections_accepted()));
  metrics_.gauge("connections_rejected")
      ->Set(static_cast<int64_t>(connections_rejected()));
  metrics_.gauge("connections_throttled")
      ->Set(static_cast<int64_t>(connections_throttled()));
  metrics_.gauge("idle_evictions")
      ->Set(static_cast<int64_t>(idle_evictions()));
}

obs::MetricsRenderInput SocketServer::BuildRenderInput() {
  obs::MetricsRenderInput in;
  in.registries = {&engine_->metrics(), &metrics_};
  in.routes = &engine_->routes();
  in.uptime_ms = engine_->uptime_ms();
  in.snapshot_seq = engine_->NextSnapshotSeq();
  return in;
}

std::string SocketServer::MetricsJson() {
  MirrorConnectionGauges();
  return obs::RenderMetricsJson(BuildRenderInput());
}

std::string SocketServer::MetricsProm() {
  MirrorConnectionGauges();
  return obs::RenderMetricsProm(BuildRenderInput());
}

Status SocketServer::Start() {
  if (started_.exchange(true)) return Status::Error("already started");
  if (options_.unix_path.empty() && options_.tcp_port < 0) {
    return Status::Error("no listener configured (unix path or tcp port)");
  }
  // A failed Start must leave nothing behind: close any listener already
  // opened AND remove the unix socket file it created — the file would
  // otherwise shadow the path until some later server unlinked it.
  auto fail = [this](const std::string& error) {
    listeners_.clear();
    if (unix_bound_) {
      ::unlink(options_.unix_path.c_str());
      unix_bound_ = false;
    }
    return Status::Error(error);
  };
  if (!options_.unix_path.empty()) {
    Result<net::ScopedFd> fd = net::ListenUnix(options_.unix_path);
    if (!fd.ok()) return fail(fd.error());
    Listener l;
    l.fd = std::move(fd).value();
    l.is_tcp = false;
    listeners_.push_back(std::move(l));
    unix_bound_ = true;
  }
  if (options_.tcp_port >= 0) {
    Result<net::ScopedFd> fd = net::ListenTcp(
        options_.tcp_host, options_.tcp_port, &bound_tcp_port_);
    if (!fd.ok()) return fail(fd.error());
    Listener l;
    l.fd = std::move(fd).value();
    l.is_tcp = true;
    listeners_.push_back(std::move(l));
  }
  // Nonblocking listeners: the reactor drains each readiness event with an
  // accept loop that must end at EAGAIN, not block.
  for (const Listener& l : listeners_) {
    Status s = net::SetNonBlocking(l.fd.get(), true);
    if (!s.ok()) return fail(s.message());
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return fail(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_ = net::ScopedFd(pipe_fds[0]);
  wake_write_ = net::ScopedFd(pipe_fds[1]);
  net::SetNonBlocking(wake_read_.get(), true);
  net::SetNonBlocking(wake_write_.get(), true);

  poller_.reset(new net::Poller());
  if (!poller_->ok()) return fail("poller setup failed");
  for (const Listener& l : listeners_) {
    Status s = poller_->Add(l.fd.get());
    if (!s.ok()) return fail(s.message());
  }
  {
    Status s = poller_->Add(wake_read_.get());
    if (!s.ok()) return fail(s.message());
  }

  // Timer wheel: one rotation spans the idle timeout, with enough ticks
  // that eviction lands within ~1/8 of the configured timeout.
  if (options_.idle_timeout_ms > 0) {
    wheel_tick_ms_ =
        std::min<int64_t>(1000, std::max<int64_t>(5, options_.idle_timeout_ms / 8));
    wheel_span_ticks_ = static_cast<size_t>(
        (options_.idle_timeout_ms + wheel_tick_ms_ - 1) / wheel_tick_ms_);
    wheel_.assign(wheel_span_ticks_ + 1, {});
    wheel_cursor_ = 0;
    next_tick_at_ms_ = NowMs() + wheel_tick_ms_;
  }

  int workers = options_.worker_threads;
  if (workers < 1) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    workers = std::min(8, std::max(2, workers));
  }
  // Each connection holds at most one queue token, so this capacity can
  // only fill when every live connection needs service at once — the
  // blocking Push is then genuine backpressure on the reactor.
  const size_t queue_cap =
      (options_.max_connections > 0 ? options_.max_connections
                                    : static_cast<size_t>(1) << 16) +
      static_cast<size_t>(workers) + 16;
  work_queue_.reset(new BoundedQueue<std::shared_ptr<Connection>>(queue_cap));

  reactor_thread_ = std::thread([this] { ReactorLoop(); });
  worker_threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    worker_threads_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void SocketServer::Stop() {
  if (!started_.load()) return;
  // The whole teardown runs under stop_mu_, and `stopped_` latches when it
  // is done. The old gate (`stopping_.exchange(true)`) let a second caller
  // — or any caller after the reactor's poller-failure self-stop had set
  // stopping_ — return immediately while threads were still live, so
  // shutdown-path actions sequenced after Stop() (stats dump,
  // --save-on-exit snapshot) could run against a serving server. Now every
  // caller leaves only once the stop is complete.
  util::MutexLock lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true);
  if (!reactor_thread_.joinable()) {
    // Start failed before spawning threads; its fail() already cleaned up.
    return;
  }
  Wake();
  reactor_thread_.join();
  // The reactor exits only once every connection is retired (sessions
  // drained by the workers), so the queue holds at most stale tokens.
  work_queue_->Close();
  for (std::thread& w : worker_threads_) w.join();
  worker_threads_.clear();
  listeners_.clear();
  if (unix_bound_) ::unlink(options_.unix_path.c_str());
}

void SocketServer::Wake() {
  if (!wake_write_.valid()) return;
  char byte = 0;
  // Best effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_write_.get(), &byte, 1);
}

// --- Reactor --------------------------------------------------------------

void SocketServer::ReactorLoop() {
  std::vector<net::Poller::Ready> ready;
  for (;;) {
    int timeout_ms = -1;
    if (!wheel_.empty()) {
      timeout_ms = static_cast<int>(
          std::max<int64_t>(0, next_tick_at_ms_ - NowMs()));
    }
    Result<int> waited = poller_->Wait(&ready, timeout_ms);
    // Loop lag metric: time spent processing this batch of events (idle
    // Wait time excluded) — the reactor's serving headroom.
    const int64_t busy_start_ns = NowNs();
    if (!waited.ok()) {
      // A broken poller cannot serve; tear everything down as if stopping.
      stopping_.store(true);
    }
    DrainControl();
    for (const net::Poller::Ready& ev : ready) {
      if (ev.fd == wake_read_.get()) {
        char buf[256];
        while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      bool is_listener = false;
      for (const Listener& l : listeners_) {
        if (l.fd.valid() && ev.fd == l.fd.get()) {
          is_listener = true;
          if (!stopping_.load()) AcceptReady(l);
          break;
        }
      }
      if (is_listener) continue;
      auto it = connections_.find(ev.fd);
      if (it != connections_.end()) ReadReady(it->second);
    }
    if (!wheel_.empty()) AdvanceWheel(NowMs());
    reactor_busy_hist_->Record(static_cast<uint64_t>(
        std::max<int64_t>(0, NowNs() - busy_start_ns)));
    if (stopping_.load()) {
      if (!shutdown_begun_) BeginShutdown();
      DrainControl();
      if (connections_.empty()) return;
    }
  }
}

void SocketServer::BeginShutdown() {
  shutdown_begun_ = true;
  // Stop accepting: deregister and close the listeners now so the bound
  // port/path frees immediately; Stop() unlinks the unix file after join.
  for (Listener& l : listeners_) {
    if (!l.fd.valid()) continue;
    poller_->Remove(l.fd.get());
    l.fd.Close();
  }
  // Half-close every live connection: pending lines still get serviced,
  // sessions drain (in-flight results are written back), then workers
  // retire them.
  std::vector<std::shared_ptr<Connection>> live;
  live.reserve(connections_.size());
  for (auto& [fd, conn] : connections_) live.push_back(conn);
  for (const std::shared_ptr<Connection>& conn : live) {
    CloseInput(conn, /*timed_out=*/false);
  }
}

bool SocketServer::ThrottleAllows(const std::string& peer_ip,
                                  int64_t now_ms) {
  const int rate = options_.tcp_accepts_per_ip_per_sec;
  if (rate <= 0 || peer_ip.empty()) return true;
  // Keep the table from growing without bound under address churn: once it
  // is large, drop buckets that have fully refilled (they hold no state a
  // fresh bucket wouldn't).
  if (ip_buckets_.size() > 16384) {
    for (auto it = ip_buckets_.begin(); it != ip_buckets_.end();) {
      double refilled = it->second.tokens +
                        static_cast<double>(now_ms - it->second.last_ms) *
                            rate / 1000.0;
      it = refilled >= rate ? ip_buckets_.erase(it) : std::next(it);
    }
  }
  auto [it, inserted] = ip_buckets_.try_emplace(peer_ip);
  IpBucket& bucket = it->second;
  if (inserted) {
    bucket.tokens = static_cast<double>(rate);
    bucket.last_ms = now_ms;
  } else {
    bucket.tokens = std::min<double>(
        rate, bucket.tokens + static_cast<double>(now_ms - bucket.last_ms) *
                                  rate / 1000.0);
    bucket.last_ms = now_ms;
  }
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

void SocketServer::AcceptReady(const Listener& listener) {
  for (;;) {
    std::string peer_ip;
    bool would_block = false;
    Result<net::ScopedFd> accepted =
        net::AcceptWithPeer(listener.fd.get(), &peer_ip, &would_block);
    if (!accepted.ok()) {
      // EAGAIN: drained. Anything else (EMFILE under fd pressure, a
      // transient network error) also ends this round; level-triggered
      // readiness re-reports if connections are still pending.
      return;
    }
    if (stopping_.load()) return;  // raced with Stop: drop, don't count
    net::ScopedFd fd = std::move(accepted).value();
    const int64_t now = NowMs();
    if (listener.is_tcp && !ThrottleAllows(peer_ip, now)) {
      connections_throttled_.fetch_add(1, std::memory_order_relaxed);
      net::WriteAll(fd.get(),
                    protocol::FormatErr(
                        "throttled", "per-ip accept rate exceeded; retry") +
                        "\n");
      continue;  // ~ScopedFd closes
    }
    if (options_.max_connections > 0 &&
        connections_.size() >= options_.max_connections) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      net::WriteAll(fd.get(),
                    protocol::FormatErr(
                        "busy", "max-connections (" +
                                    std::to_string(options_.max_connections) +
                                    ") reached") +
                        "\n");
      continue;
    }
    AdmitConnection(std::move(fd), listener.is_tcp, peer_ip);
  }
}

void SocketServer::AdmitConnection(net::ScopedFd fd, bool is_tcp,
                                   const std::string& peer_ip) {
  auto conn = std::make_shared<Connection>(options_.max_line_bytes);
  const int raw_fd = fd.get();
  conn->fd = std::move(fd);
  conn->is_tcp = is_tcp;
  conn->peer_ip = peer_ip;
  conn->last_activity_ms->store(NowMs(), std::memory_order_relaxed);

  // The sink runs on engine completion threads, so it must never block the
  // shared engine indefinitely behind one slow client: sends carry a
  // timeout, and the first failed/timed-out write latches the connection
  // dead — every later write (including the session drain's result lines)
  // becomes a no-op instead of paying the timeout again. The shutdown also
  // unwedges the reactor side, which then tears the connection down.
  timeval send_timeout;
  send_timeout.tv_sec = kSendTimeoutSeconds;
  send_timeout.tv_usec = 0;
  ::setsockopt(raw_fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
               sizeof(send_timeout));

  SessionOptions session_opt = options_.session;
  session_opt.auth_secret = options_.auth_secret;
  // The reactor's decoder understands length-prefixed frames, so sessions
  // over this transport may grant `hello binary`.
  session_opt.binary_frames_supported = true;
  conn->decoder.set_allow_binary(true);
  session_opt.health_json = [this] { return HealthJson(); };
  // `stats` answers the same merged object as `health` — one source of
  // truth, so the two verbs can never disagree on fields.
  session_opt.stats_json = [this] { return HealthJson(); };
  session_opt.metrics_json = [this] { return MetricsJson(); };
  session_opt.metrics_prom = [this] { return MetricsProm(); };
  std::shared_ptr<WriteState> write_state = conn->write_state;
  std::shared_ptr<std::atomic<int64_t>> activity = conn->last_activity_ms;
  conn->session.reset(new ServerSession(
      engine_, std::move(session_opt),
      [raw_fd, write_state, activity](const std::string& line) {
        util::MutexLock lock(write_state->mu);
        if (write_state->dead) return;
        if (net::WriteAll(raw_fd, line + "\n").ok()) {
          activity->store(NowMs(), std::memory_order_relaxed);
        } else {
          write_state->dead = true;
          ::shutdown(raw_fd, SHUT_RDWR);  // surface EOF to the reactor
        }
      }));

  Status added = poller_->Add(raw_fd);
  if (!added.ok()) {
    // Cannot watch it (poller table pressure): refuse service rather than
    // admit a connection that would never be read.
    connections_rejected_.fetch_add(1, std::memory_order_relaxed);
    conn->session.reset();
    return;
  }
  conn->in_poller = true;
  connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  connections_active_.fetch_add(1, std::memory_order_relaxed);
  connections_[raw_fd] = conn;
  if (!wheel_.empty()) WheelInsert(conn.get(), options_.idle_timeout_ms);
}

void SocketServer::ReadReady(const std::shared_ptr<Connection>& conn) {
  {
    util::MutexLock lock(conn->work_mu);
    if (conn->input_closed) {
      // A worker already closed this connection (quit/bad-auth) but its
      // retire control has not reached us yet: stop watching, skip reading.
      if (conn->in_poller) {
        poller_->Remove(conn->fd.get());
        conn->in_poller = false;
      }
      WheelRemove(conn.get());
      return;
    }
  }

  const int fd = conn->fd.get();
  bool saw_eof = false;
  bool saw_error = false;
  bool got_bytes = false;
  size_t budget = kReadBudgetBytes;
  char chunk[16384];
  while (budget > 0) {
    const size_t want = std::min(budget, sizeof(chunk));
    ssize_t n = ::recv(fd, chunk, want, MSG_DONTWAIT);
    if (n > 0) {
      conn->decoder.Feed(chunk, static_cast<size_t>(n));
      budget -= static_cast<size_t>(n);
      got_bytes = true;
      if (static_cast<size_t>(n) < want) break;  // kernel buffer drained
      continue;
    }
    if (n == 0) {
      saw_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    saw_error = true;
    break;
  }
  if (saw_eof || saw_error) conn->decoder.SignalEof();

  const int64_t now = NowMs();
  if (got_bytes) {
    conn->last_activity_ms->store(now, std::memory_order_relaxed);
    if (!wheel_.empty() && conn->wheel_bucket != SIZE_MAX) {
      WheelRemove(conn.get());
      WheelInsert(conn.get(), options_.idle_timeout_ms);
    }
  }

  // Decode and hand off. The decoder owns oversized-line policy; here every
  // event just becomes a pending entry so workers emit protocol replies in
  // input order.
  bool should_pause = false;
  {
    util::MutexLock lock(conn->work_mu);
    std::string line;
    for (;;) {
      // Per-payload framing cost, measured around the decode step alone and
      // carried with the payload into the request trace's wire-decode span.
      const int64_t decode_start = NowNs();
      net::LineDecoder::Event ev = conn->decoder.Next(&line);
      const uint64_t decode_ns =
          static_cast<uint64_t>(NowNs() - decode_start);
      if (ev == net::LineDecoder::Event::kLine ||
          ev == net::LineDecoder::Event::kOversized ||
          ev == net::LineDecoder::Event::kFrame) {
        Connection::PendingLine entry;
        entry.text = std::move(line);
        entry.oversized = ev == net::LineDecoder::Event::kOversized;
        entry.binary = ev == net::LineDecoder::Event::kFrame;
        entry.decode_ns = decode_ns;
        conn->pending_bytes += entry.text.size();
        conn->pending.push_back(std::move(entry));
        line.clear();
        continue;
      }
      if (ev == net::LineDecoder::Event::kBadFrame) {
        // Unresyncable: hand the worker one final bad-frame entry (it
        // answers `err bad-frame`), stop reading this connection for good.
        Connection::PendingLine entry;
        entry.text = std::move(line);
        entry.bad_frame = true;
        conn->pending.push_back(std::move(entry));
        line.clear();
        saw_error = true;
        conn->decoder.SignalEof();
        break;
      }
      break;  // kNone (need more input) or kEof (handled below)
    }
    if (saw_eof || saw_error) {
      conn->input_closed = true;
    } else if (conn->pending.size() > kPauseAfterPendingLines ||
               conn->pending_bytes > kPauseAfterPendingBytes) {
      should_pause = true;
      conn->paused = true;
    }
    if (!conn->pending.empty() || conn->input_closed) ScheduleLocked(conn);
  }

  if (saw_eof || saw_error) {
    if (conn->in_poller) {
      poller_->Remove(fd);
      conn->in_poller = false;
    }
    WheelRemove(conn.get());
  } else if (should_pause && conn->in_poller) {
    poller_->Remove(fd);
    conn->in_poller = false;
  }
}

// Enqueues a worker token for `conn` if none is outstanding. Caller holds
// conn->work_mu.
void SocketServer::ScheduleLocked(const std::shared_ptr<Connection>& conn) {
  if (conn->scheduled || conn->torn_down) return;
  conn->scheduled = true;
  conn->enqueued_at_ns.store(NowNs(), std::memory_order_relaxed);
  queue_depth_->Add(1);
  work_queue_->Push(conn);
}

void SocketServer::CloseInput(const std::shared_ptr<Connection>& conn,
                              bool timed_out) {
  if (conn->in_poller) {
    poller_->Remove(conn->fd.get());
    conn->in_poller = false;
  }
  WheelRemove(conn.get());
  util::MutexLock lock(conn->work_mu);
  if (conn->input_closed) return;
  conn->input_closed = true;
  conn->timed_out = timed_out;
  ScheduleLocked(conn);
}

void SocketServer::DrainControl() {
  std::vector<std::shared_ptr<Connection>> retired;
  std::vector<std::shared_ptr<Connection>> resumable;
  {
    util::MutexLock lock(ctrl_mu_);
    retired.swap(ctrl_retired_);
    resumable.swap(ctrl_resumable_);
  }
  for (const std::shared_ptr<Connection>& conn : resumable) {
    util::MutexLock lock(conn->work_mu);
    if (!conn->paused || conn->input_closed || conn->torn_down) continue;
    conn->paused = false;
    if (!conn->in_poller && poller_->Add(conn->fd.get()).ok()) {
      conn->in_poller = true;
    }
  }
  for (const std::shared_ptr<Connection>& conn : retired) {
    if (conn->in_poller) {
      poller_->Remove(conn->fd.get());
      conn->in_poller = false;
    }
    WheelRemove(conn.get());
    connections_.erase(conn->fd.get());
  }
}

// --- Timer wheel ----------------------------------------------------------

void SocketServer::WheelInsert(Connection* conn, int64_t expire_in_ms) {
  size_t ticks = static_cast<size_t>(
      std::max<int64_t>(1, (expire_in_ms + wheel_tick_ms_ - 1) / wheel_tick_ms_));
  if (ticks > wheel_span_ticks_) ticks = wheel_span_ticks_;
  const size_t bucket = (wheel_cursor_ + ticks) % wheel_.size();
  wheel_[bucket].push_front(conn);
  conn->wheel_bucket = bucket;
  conn->wheel_pos = wheel_[bucket].begin();
}

void SocketServer::WheelRemove(Connection* conn) {
  if (conn->wheel_bucket == SIZE_MAX) return;
  wheel_[conn->wheel_bucket].erase(conn->wheel_pos);
  conn->wheel_bucket = SIZE_MAX;
}

void SocketServer::AdvanceWheel(int64_t now_ms) {
  while (now_ms >= next_tick_at_ms_) {
    next_tick_at_ms_ += wheel_tick_ms_;
    wheel_cursor_ = (wheel_cursor_ + 1) % wheel_.size();
    // Entries here were armed one full rotation ago; recent result-write
    // activity (stamped by completion threads, invisible to the wheel until
    // now) re-arms instead of evicting.
    std::vector<Connection*> due(wheel_[wheel_cursor_].begin(),
                                 wheel_[wheel_cursor_].end());
    for (Connection* conn : due) {
      const int64_t idle =
          now_ms - conn->last_activity_ms->load(std::memory_order_relaxed);
      if (idle < options_.idle_timeout_ms) {
        WheelRemove(conn);
        WheelInsert(conn, options_.idle_timeout_ms - idle);
        continue;
      }
      auto it = connections_.find(conn->fd.get());
      if (it == connections_.end()) continue;
      idle_evictions_.fetch_add(1, std::memory_order_relaxed);
      CloseInput(it->second, /*timed_out=*/true);
    }
  }
}

// --- Workers --------------------------------------------------------------

void SocketServer::WorkerLoop() {
  std::shared_ptr<Connection> conn;
  while (work_queue_->Pop(&conn)) {
    queue_depth_->Add(-1);
    const int64_t enqueued_ns =
        conn->enqueued_at_ns.load(std::memory_order_relaxed);
    if (enqueued_ns != 0) {
      queue_wait_hist_->Record(
          static_cast<uint64_t>(std::max<int64_t>(0, NowNs() - enqueued_ns)));
    }
    ProcessConnection(conn);
    conn.reset();
  }
}

void SocketServer::ProcessConnection(const std::shared_ptr<Connection>& conn) {
  std::deque<Connection::PendingLine> batch;
  bool input_closed;
  bool timed_out;
  {
    util::MutexLock lock(conn->work_mu);
    if (conn->torn_down) {  // stale token
      conn->scheduled = false;
      return;
    }
    batch.swap(conn->pending);
    conn->pending_bytes = 0;
    input_closed = conn->input_closed;
    timed_out = conn->timed_out;
  }

  bool open = true;
  for (const Connection::PendingLine& line : batch) {
    if (line.oversized) {
      conn->session->EmitError(
          "oversized-line",
          "line exceeds " + std::to_string(options_.max_line_bytes) +
              " bytes; discarded");
    } else if (line.bad_frame) {
      // The reactor already stopped reading (binary framing cannot resync);
      // answer the structured error and fall through to teardown via the
      // input_closed it latched.
      conn->session->EmitError("bad-frame", line.text + "; closing");
      open = false;
      break;
    } else {
      open = conn->session->HandleWire(line.text, line.binary,
                                       line.decode_ns);
      if (!open) break;  // quit / bad-auth: drop any lines queued behind it
    }
  }

  bool do_teardown = false;
  bool signal_resume = false;
  {
    util::MutexLock lock(conn->work_mu);
    if (!open) conn->input_closed = true;
    // Re-read under the lock, never trust the pre-batch copy: while this
    // batch ran, ReadReady (peer EOF) or CloseInput (shutdown, idle
    // eviction) may have closed the input — and their ScheduleLocked was
    // suppressed by this worker's outstanding token, so the close is
    // observable only HERE. Acting on the stale copy leaked the connection
    // (no one ever retires it) and wedged Stop(), which joins a reactor
    // waiting for exactly that retirement.
    input_closed = conn->input_closed;
    if (input_closed && conn->pending.empty()) {
      do_teardown = true;
      timed_out = timed_out || conn->timed_out;
      // scheduled stays true: nothing may re-enqueue mid-teardown.
    } else if (!conn->pending.empty()) {
      // More lines arrived while this batch ran: keep the token.
      conn->enqueued_at_ns.store(NowNs(), std::memory_order_relaxed);
      queue_depth_->Add(1);
      work_queue_->Push(conn);
      return;
    } else {
      conn->scheduled = false;
      signal_resume = conn->paused;
    }
  }
  if (do_teardown) {
    TearDown(conn, timed_out);
    return;
  }
  if (signal_resume) {
    {
      util::MutexLock lock(ctrl_mu_);
      ctrl_resumable_.push_back(conn);
    }
    Wake();
  }
}

void SocketServer::TearDown(const std::shared_ptr<Connection>& conn,
                            bool timed_out) {
  // A batch still collecting members when input ends must answer its
  // batch-mismatch error before the drain below.
  conn->session->OnInputClosed();
  if (timed_out) {
    conn->session->EmitError(
        "idle-timeout", "no traffic for " +
                            std::to_string(options_.idle_timeout_ms) +
                            "ms; closing");
  }
  // ~ServerSession drains: every in-flight result line is written before
  // the socket shuts down, so the peer sees complete output, then EOF.
  conn->session.reset();
  ::shutdown(conn->fd.get(), SHUT_RDWR);
  {
    util::MutexLock lock(conn->work_mu);
    conn->torn_down = true;
    conn->scheduled = false;
  }
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
  {
    util::MutexLock lock(ctrl_mu_);
    ctrl_retired_.push_back(conn);
  }
  Wake();
}

}  // namespace server
}  // namespace xpathsat
