#include "src/server/socket_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <thread>
#include <utility>

namespace xpathsat {
namespace server {

namespace {
// Cap on how long one reply write may block an engine completion thread
// behind a client that stopped reading. After one expiry the connection is
// latched dead and every further write is skipped, so a stuck client costs
// the engine at most this once.
constexpr int kSendTimeoutSeconds = 10;
}  // namespace

SocketServer::SocketServer(SatEngine* engine, SocketServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  if (started_.exchange(true)) return Status::Error("already started");
  if (options_.unix_path.empty() && options_.tcp_port < 0) {
    return Status::Error("no listener configured (unix path or tcp port)");
  }
  if (!options_.unix_path.empty()) {
    Result<net::ScopedFd> fd = net::ListenUnix(options_.unix_path);
    if (!fd.ok()) return Status::Error(fd.error());
    listeners_.push_back(std::move(fd).value());
    unix_bound_ = true;
  }
  if (options_.tcp_port >= 0) {
    Result<net::ScopedFd> fd = net::ListenTcp(
        options_.tcp_host, options_.tcp_port, &bound_tcp_port_);
    if (!fd.ok()) {
      listeners_.clear();
      return Status::Error(fd.error());
    }
    listeners_.push_back(std::move(fd).value());
  }
  accept_threads_.reserve(listeners_.size());
  for (const net::ScopedFd& listener : listeners_) {
    int fd = listener.get();
    accept_threads_.emplace_back([this, fd] { AcceptLoop(fd); });
  }
  return Status::Ok();
}

void SocketServer::Stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  // shutdown(2) — not close — wakes the blocked accept(2)s; the fds stay
  // valid until the accept threads are joined.
  for (const net::ScopedFd& listener : listeners_) {
    ::shutdown(listener.get(), SHUT_RDWR);
  }
  for (std::thread& t : accept_threads_) t.join();
  accept_threads_.clear();
  listeners_.clear();
  if (unix_bound_) ::unlink(options_.unix_path.c_str());

  // Half-close every live connection: its reader sees EOF, its session
  // drains (in-flight results are still written back), and the thread
  // exits.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (Connection& c : connections_) {
      ::shutdown(c.fd.get(), SHUT_RD);
    }
  }
  for (;;) {
    Connection* next = nullptr;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (connections_.empty()) break;
      next = &connections_.front();
    }
    next->thread.join();
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.pop_front();
  }
}

void SocketServer::ReapFinishedLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done.load(std::memory_order_acquire)) {
      it->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketServer::AcceptLoop(int listen_fd) {
  for (;;) {
    Result<net::ScopedFd> accepted = net::Accept(listen_fd);
    if (!accepted.ok()) {
      // Shutdown (or a transient accept failure while stopping) ends the
      // loop; transient failures while serving retry after a beat so a
      // persistent condition (EMFILE under fd pressure) cannot hot-spin.
      if (stopping_.load()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load()) return;  // raced with Stop: drop the connection
    ReapFinishedLocked();
    connections_.emplace_back();
    Connection* connection = &connections_.back();
    connection->fd = std::move(accepted).value();
    connection->thread =
        std::thread([this, connection] { ServeConnection(connection); });
  }
}

void SocketServer::ServeConnection(Connection* connection) {
  connections_active_.fetch_add(1, std::memory_order_relaxed);
  const int fd = connection->fd.get();
  // The sink runs on engine completion threads, so it must never block the
  // shared engine indefinitely behind one slow client: sends carry a
  // timeout, and the first failed/timed-out write latches the connection
  // dead — every later write (including the session drain's result lines)
  // becomes a no-op instead of paying the timeout again. The reader side
  // then sees the shutdown and tears the connection down.
  timeval send_timeout;
  send_timeout.tv_sec = kSendTimeoutSeconds;
  send_timeout.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
               sizeof(send_timeout));
  struct WriteState {
    std::mutex mu;
    bool dead = false;
  };
  auto write_state = std::make_shared<WriteState>();
  {
    ServerSession session(
        engine_, options_.session,
        [fd, write_state](const std::string& line) {
          std::lock_guard<std::mutex> lock(write_state->mu);
          if (write_state->dead) return;
          if (!net::WriteAll(fd, line + "\n").ok()) {
            write_state->dead = true;
            ::shutdown(fd, SHUT_RDWR);  // unwedge the reader too
          }
        });
    net::LineReader reader(fd, options_.max_line_bytes);
    std::string line, error;
    for (bool open = true; open;) {
      switch (reader.ReadLine(&line, &error)) {
        case net::LineReader::Event::kLine:
          open = session.HandleLine(line);
          break;
        case net::LineReader::Event::kOversized:
          session.EmitError(
              "oversized-line",
              "line exceeds " + std::to_string(options_.max_line_bytes) +
                  " bytes; discarded");
          break;
        case net::LineReader::Event::kEof:
        case net::LineReader::Event::kError:
          open = false;
          break;
      }
    }
    // ~ServerSession drains: every in-flight result line is written before
    // the socket closes.
  }
  // Full close happens at reap time (Stop may still poke this fd); the
  // half-close here is what lets the peer see EOF as soon as its session
  // ends rather than when the connection slot is reaped.
  ::shutdown(fd, SHUT_RDWR);
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
  connection->done.store(true, std::memory_order_release);
}

}  // namespace server
}  // namespace xpathsat
