// The xpathsat line protocol: one implementation of the request
// parser and reply formatters, shared by `xpathsat_cli --serve` (stdin),
// `xpathsat_server` (unix/TCP sockets), and `xpathsat_cli --connect`.
//
// Requests are single lines, verb first ('#'-comments and blank lines are
// ignored):
//
//   auth SECRET         authenticate (required first, when the server was
//                       started with a shared secret)
//   health              liveness/metrics probe as one JSON line — the one
//                       verb allowed WITHOUT auth (load balancers probe it).
//                       Pre-auth, when a secret is configured, the payload is
//                       redacted to {"status", "uptime_ms"}; the full merged
//                       stats object needs auth (or no secret configured)
//   hello [FEATURE...]  negotiate optional wire features; FEATURE is `batch`
//                       and/or `binary`. The reply names what was granted
//   dtd NAME PATH       register the DTD file at PATH under NAME
//   query NAME XPATH    submit XPATH against NAME (alias: q)
//   batch N             (needs `hello batch`) the next N lines are query/q
//                       requests submitted as one unit: nothing dispatches
//                       until all N arrived and validated, then one ack
//                       carries every ticket id and one barrier line follows
//                       the last result. A non-query member, a malformed
//                       member, or EOF before line N discards the whole
//                       batch with `err batch-mismatch` — never a partial
//                       dispatch
//   drop NAME           release NAME's handle
//   cancel ID           cancel the still-queued ticket ID
//   flush               block until every pending result line is emitted
//   stats               engine statistics as one JSON line
//   metrics [prom]      latency histograms + per-route counters: one JSON
//                       line, or a multi-line Prometheus text exposition
//                       (terminated by "# EOF") with `metrics prom`
//   slow                drain the slow-query log as one JSON line
//   save PATH           write a compiled-artifact snapshot to PATH
//   load PATH           warm the caches from the snapshot at PATH
//   quit                flush and close the session
//
// Replies are single lines, tagged by their first token:
//
//   ok dtd NAME fp=FP          ok query ID        ok drop NAME
//   ok cancel ID               ok flush           ok quit
//   ok auth                    auth accepted
//   ok hello [FEATURE...]      negotiation reply listing exactly the granted
//                              features (`binary` is granted only on
//                              transports that can carry frames — the socket
//                              server, not --serve's stdin)
//   ok batch SEQ ids ID...     batch accepted: all N members submitted; the
//                              N ticket ids, in member order. SEQ is a
//                              per-session batch number
//   ok batch SEQ done          barrier: every member's result line has been
//                              emitted (arrives after the last result, out
//                              of FIFO reply order)
//   ID [verdict] XPATH -- ...  completion line for ticket ID (may arrive
//                              out of submission order; [verdict] is one of
//                              sat/unsat/unknown/error)
//   stats {...}                single-line JSON, same field names as --json
//   health {...}               single-line JSON for probes (engine stats,
//                              plus server connection counters when served
//                              by xpathsat_server)
//   metrics {...}              single-line JSON (histogram summaries with
//                              p50/p90/p99, route counters); `metrics prom`
//                              instead emits the multi-line exposition
//                              ending with a bare "# EOF" line
//   slow {...}                 single-line JSON draining the slow-query log
//   ok save dtds=N memos=M     snapshot written (N artifact, M memo records)
//   ok load dtds=N memos=M skipped=K
//                              caches warmed; K records were skipped
//                              (corrupt, truncated, or failed verification)
//   err CODE detail            structured error; CODE is a stable slug
//                              (unknown-verb, bad-args, oversized-line,
//                              unknown-dtd, unknown-ticket, not-cancellable,
//                              dtd-parse, io, auth-required, bad-auth,
//                              busy, throttled, idle-timeout,
//                              store-corrupt, store-version,
//                              batch-mismatch, bad-frame)
//
// Binary framing (negotiated with `hello binary`): a request may arrive as a
// length-prefixed frame [0x00][u32 length, big-endian][payload] instead of a
// newline-terminated line; the payload is one request line without its
// newline. Replies are always text lines. A frame before negotiation, a
// declared length over kMaxLineBytes, or a frame truncated by EOF answers
// `err bad-frame` and closes the connection (a binary stream cannot resync).
//
// Malformed input (unknown verb, missing argument, oversized line) always
// answers with an `err` line and keeps the session alive — nothing is
// silently ignored.
#ifndef XPATHSAT_SERVER_PROTOCOL_H_
#define XPATHSAT_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/sat_engine.h"

namespace xpathsat {
namespace protocol {

/// Hard cap on one request line (bytes, excluding the newline). Lines beyond
/// this answer with `err oversized-line` instead of growing buffers without
/// bound.
constexpr size_t kMaxLineBytes = 64 * 1024;

/// Hard cap on `batch N`. Bounds collect-state memory per session and keeps
/// the worst-case `ok batch SEQ ids ...` ack line (20 digits + space per id)
/// comfortably under kMaxLineBytes.
constexpr uint64_t kMaxBatchRequests = 1024;

enum class Verb {
  kAuth,
  kHealth,
  kHello,
  kDtd,
  kQuery,
  kBatch,
  kDrop,
  kCancel,
  kFlush,
  kStats,
  kMetrics,
  kSlow,
  kSave,
  kLoad,
  kQuit,
};

/// One parsed request line.
struct Command {
  Verb verb = Verb::kFlush;
  std::string name;        // dtd/query/drop: the schema name
  std::string arg;         // dtd: the path; query: the XPath text;
                           // auth: the secret; metrics: "" or "prom";
                           // save/load: the snapshot path; hello: the
                           // requested features, space-joined ("", "batch",
                           // "binary", "batch binary", "binary batch")
  uint64_t ticket_id = 0;  // cancel
  uint64_t batch_count = 0;  // batch: N, in [1, kMaxBatchRequests]
};

enum class ParseStatus {
  kCommand,  // `command` is valid
  kEmpty,    // blank line or comment: nothing to do, nothing to answer
  kError,    // malformed: answer with `error_line`
};

struct ParseResult {
  ParseStatus status = ParseStatus::kEmpty;
  Command command;
  /// For kError: the complete `err CODE detail` reply line.
  std::string error_line;
};

/// Parses one raw request line (without its newline). Enforces kMaxLineBytes
/// and strict per-verb arity; every malformed shape yields a structured
/// `err` line rather than a silent skip.
ParseResult ParseCommandLine(const std::string& line);

/// Prints a command back into its canonical line form.
/// ParseCommandLine(FormatCommand(c)) reproduces `c` for every valid
/// command (the round-trip property test pins this).
std::string FormatCommand(const Command& command);

/// Human verb name ("dtd", "query", ...).
const char* VerbName(Verb verb);

/// Verdict tag used in result lines: sat/unsat/unknown, or "error" for
/// responses whose status is not ok.
const char* VerdictName(const SatResponse& response);

// --- Reply formatters (all return one line, no trailing newline) ---------

/// `err CODE detail`.
std::string FormatErr(const std::string& code, const std::string& detail);

/// `ok dtd NAME fp=%016llx`.
std::string FormatDtdAck(const std::string& name, uint64_t fingerprint);

/// `ok query ID` — submission ack carrying the engine ticket id, which is
/// the id a later `cancel` addresses and the tag on the result line.
std::string FormatQueryAck(uint64_t ticket_id);

/// `ok hello` / `ok hello batch binary` — exactly the granted features, in
/// the order they were requested.
std::string FormatHelloAck(const std::string& granted);

/// `ok batch SEQ ids ID...` — every member's engine ticket id, member order.
std::string FormatBatchAck(uint64_t seq, const std::vector<uint64_t>& ids);

/// `ok batch SEQ done` — the post-last-result barrier line.
std::string FormatBatchDone(uint64_t seq);

/// Wraps one request line into a binary frame:
/// [0x00][u32 length, big-endian][payload]. The shared encoder for clients;
/// the decoder lives in net::LineDecoder. `payload` must not exceed
/// kMaxLineBytes (enforced by the caller; the server answers bad-frame).
std::string EncodeFrame(const std::string& payload);

/// `ID [verdict] XPATH -- algorithm elapsed-us [q-cached] [memo]`, or
/// `ID [error  ] XPATH -- message` when the response failed.
std::string FormatResultLine(uint64_t ticket_id, const std::string& query,
                             const SatResponse& response);

/// The bare stats JSON object (no tag), field names mirroring the CLI's
/// --json output (requests, dtd_cache_hits, ..., deadline_expirations,
/// uptime_ms, snapshot_seq) plus live_dtd_handles — the single source of
/// truth for engine-stats fields, shared by the `stats` and `health` reply
/// lines and the CLI's --json output.
std::string FormatStatsJson(const SatEngineStats& stats,
                            uint64_t live_dtd_handles);

/// `stats {json}`: one line, so scripted clients parse instead of scraping.
std::string FormatStatsLine(const SatEngineStats& stats,
                            uint64_t live_dtd_handles);

}  // namespace protocol
}  // namespace xpathsat

#endif  // XPATHSAT_SERVER_PROTOCOL_H_
