// Persistent compiled-artifact store: the versioned, checksummed on-disk
// snapshot format behind `save PATH` / `load PATH` and `--warm-from`.
//
// A snapshot holds the engine's expensive-to-recompute state — serialized
// CompiledDtd artifacts (Glushkov NFAs, label graphs, Prop 3.3 normal
// forms) and the verdict memo — so a restarted server warms from disk
// instead of re-paying compilation and re-deciding memoized verdicts.
//
// File layout (all integers little-endian):
//
//   [8-byte magic "XPSTSNAP"][u32 format version]
//   record*   where record = [u8 tag][u32 len][payload: len bytes][u32 crc]
//
// The CRC32 (IEEE, poly 0xEDB88320) covers the tag byte plus the payload.
// Readers never trust a record: a CRC mismatch skips the record and keeps
// scanning (kCorrupt), a short read stops the scan (kTruncated), and a file
// whose format version is newer than kSnapshotFormatVersion is rejected
// outright with a structured kBadVersion error — forward compatibility is
// explicit, never guessed at.
//
// Trust model: a snapshot is operator-supplied input, like a --dtd file.
// The CRC catches accidental corruption (torn writes, bit rot, truncation);
// the loader additionally re-derives every DTD fingerprint from the decoded
// schema text (store::DecodeCompiledDtdRecord), so a record whose claimed
// fingerprint does not match its own schema — forged or drifted — is
// rejected, and memo entries only ever attach to a schema decoded and
// verified from the same file. The engine's in-memory EquivalentTo hit
// checks remain in force on top, so a fingerprint collision can never serve
// verdicts for the wrong schema, warm-loaded or not.
//
// Writes are atomic at the file level: SnapshotWriter writes `path.tmp` and
// renames it over `path` on Commit, so a crashed save leaves any previous
// snapshot intact.
//
// Versioning policy: kSnapshotFormatVersion bumps on ANY incompatible
// layout change (record payloads included). Old readers reject newer files;
// newer readers may choose to read older versions but are not required to —
// v1 readers reject everything but v1. The README "Persistence" section
// keeps a changelog row per version (enforced by the `store-version` rule
// in tools/lint/check_invariants.py).
#ifndef XPATHSAT_STORE_SNAPSHOT_H_
#define XPATHSAT_STORE_SNAPSHOT_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "src/sat/compiled_dtd.h"
#include "src/sat/satisfiability.h"
#include "src/util/status.h"

namespace xpathsat {
namespace store {

/// First 8 bytes of every snapshot file.
inline constexpr char kSnapshotMagic[8] = {'X', 'P', 'S', 'T',
                                           'S', 'N', 'A', 'P'};
/// Current snapshot format version. Bumping this requires a matching
/// changelog row in the README "Persistence" section (lint rule
/// `store-version`).
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Record payloads larger than this are treated as corruption (a flipped
/// length field must not drive a multi-gigabyte allocation).
inline constexpr uint32_t kMaxRecordLen = 64u * 1024 * 1024;

/// Record types. Unknown tags are skipped (forward-compatible within a
/// version for additive record kinds).
enum class RecordTag : uint8_t {
  kCompiledDtd = 1,
  kMemoEntry = 2,
};

/// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) of `len` bytes, starting
/// from `seed` (pass the return value back in to checksum discontiguous
/// pieces). Self-contained table implementation — no zlib dependency.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

// --- Primitive codecs (little-endian, append-to-string) -------------------

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutBool(std::string* out, bool v);
/// u32 length prefix + raw bytes.
void PutString(std::string* out, const std::string& s);

/// Sequential reader over an in-memory payload. Every Read* returns false
/// (and latches !ok()) on underflow; decoding code checks ok() once at the
/// end instead of per field.
class ByteReader {
 public:
  explicit ByteReader(const std::string& buf) : buf_(buf) {}

  bool ReadU8(uint8_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadBool(bool* v);
  bool ReadString(std::string* v);

  /// True iff no read has underflowed.
  bool ok() const { return ok_; }
  /// True iff the whole buffer was consumed (and no read underflowed).
  bool AtEnd() const { return ok_ && pos_ == buf_.size(); }

 private:
  const std::string& buf_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- File writer ----------------------------------------------------------

/// Writes a snapshot to `path` atomically: records accumulate in
/// `path.tmp`, which Commit renames over `path`. Abandoning the writer
/// (destruction without Commit) removes the temporary.
class SnapshotWriter {
 public:
  SnapshotWriter() = default;
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Creates `path.tmp` and writes the header. Fails on I/O errors.
  Status Open(const std::string& path);
  /// Appends one record (tag + length + payload + CRC).
  Status Append(RecordTag tag, const std::string& payload);
  /// Flushes, closes, and renames the temporary over `path`.
  Status Commit();

 private:
  void Abandon();

  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
};

// --- File reader ----------------------------------------------------------

/// Structured open failure: the caller maps kinds onto wire `err` slugs
/// (kIo -> io, kBadMagic -> store-corrupt, kBadVersion -> store-version).
struct SnapshotOpenError {
  enum class Kind { kNone, kIo, kBadMagic, kBadVersion };
  Kind kind = Kind::kNone;
  /// The version the file claims; meaningful for kBadVersion.
  uint32_t file_version = 0;
  std::string detail;
};

/// Sequential scan over a snapshot's records. Never trusts the file: CRC
/// mismatches and oversized lengths are reported per record (kCorrupt) and
/// scanning continues at the next plausible boundary; short reads stop the
/// scan (kTruncated).
class SnapshotReader {
 public:
  enum class Outcome {
    kRecord,     ///< `tag`/`payload` hold a CRC-verified record
    kCorrupt,    ///< record failed its CRC (or had an absurd length); skipped
    kTruncated,  ///< the file ended mid-record; no further records
    kEof,        ///< clean end of file
  };

  SnapshotReader() = default;
  ~SnapshotReader();

  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  /// Opens and validates the header. On failure fills `*error` and returns
  /// false; the reader is unusable.
  bool Open(const std::string& path, SnapshotOpenError* error);

  /// Advances to the next record. On kCorrupt the record was skipped and the
  /// scan continues (call Next again); kTruncated and kEof are terminal.
  Outcome Next(uint8_t* tag, std::string* payload);

 private:
  std::FILE* file_ = nullptr;
  bool done_ = false;
};

// --- Artifact record codecs ----------------------------------------------

/// Serializes one CompiledDtd (schema text + every derived artifact) as a
/// kCompiledDtd payload.
std::string EncodeCompiledDtdRecord(const CompiledDtd& compiled);

/// Decodes a kCompiledDtd payload. Verifies internal consistency: the
/// schema text must parse, and its recomputed Dtd::Fingerprint() must equal
/// the fingerprint the record claims (rejecting forged or drifted keys).
/// Returns the decoded artifacts or an error; never trusts the input.
Result<std::shared_ptr<const CompiledDtd>> DecodeCompiledDtdRecord(
    const std::string& payload);

/// One memoized verdict, keyed exactly like the engine's in-memory memo.
struct MemoRecord {
  std::string canonical_query;
  uint64_t dtd_fingerprint = 0;
  uint64_t options_digest = 0;
  std::string algorithm;
  SatVerdict verdict = SatVerdict::kUnknown;
  std::string note;
  bool has_witness = false;
  XmlTree witness;  ///< meaningful only when has_witness
};

/// Serializes one memoized verdict as a kMemoEntry payload.
std::string EncodeMemoRecord(const MemoRecord& record);

/// Decodes a kMemoEntry payload (validating the witness tree's structure:
/// parents precede children, node 0 is the root). The fingerprint it names
/// is only a claim — the loader must resolve it against a schema decoded
/// and verified from the same snapshot before trusting the entry.
Result<MemoRecord> DecodeMemoRecord(const std::string& payload);

}  // namespace store
}  // namespace xpathsat

#endif  // XPATHSAT_STORE_SNAPSHOT_H_
