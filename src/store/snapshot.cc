#include "src/store/snapshot.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "src/xml/dtd.h"
#include "src/xml/tree.h"

namespace xpathsat {
namespace store {

namespace {

// Lazily built CRC32 lookup table (IEEE 802.3 reflected polynomial).
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// --- Primitive codecs -----------------------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutBool(std::string* out, bool v) { PutU8(out, v ? 1 : 0); }

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool ByteReader::ReadU8(uint8_t* v) {
  if (!ok_ || buf_.size() - pos_ < 1) {
    ok_ = false;
    return false;
  }
  *v = static_cast<uint8_t>(buf_[pos_++]);
  return true;
}

bool ByteReader::ReadU32(uint32_t* v) {
  if (!ok_ || buf_.size() - pos_ < 4) {
    ok_ = false;
    return false;
  }
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<uint8_t>(buf_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *v = r;
  return true;
}

bool ByteReader::ReadU64(uint64_t* v) {
  if (!ok_ || buf_.size() - pos_ < 8) {
    ok_ = false;
    return false;
  }
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<uint8_t>(buf_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *v = r;
  return true;
}

bool ByteReader::ReadBool(bool* v) {
  uint8_t b = 0;
  if (!ReadU8(&b)) return false;
  *v = (b != 0);
  return true;
}

bool ByteReader::ReadString(std::string* v) {
  uint32_t len = 0;
  if (!ReadU32(&len)) return false;
  if (buf_.size() - pos_ < len) {
    ok_ = false;
    return false;
  }
  v->assign(buf_, pos_, len);
  pos_ += len;
  return true;
}

// --- File writer ----------------------------------------------------------

SnapshotWriter::~SnapshotWriter() { Abandon(); }

void SnapshotWriter::Abandon() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    std::remove(tmp_path_.c_str());
  }
}

Status SnapshotWriter::Open(const std::string& path) {
  if (file_ != nullptr) return Status::Error("writer already open");
  path_ = path;
  tmp_path_ = path + ".tmp";
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::Error("cannot create " + tmp_path_);
  }
  std::string header(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutU32(&header, kSnapshotFormatVersion);
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    Abandon();
    return Status::Error("write failed on " + tmp_path_);
  }
  return Status::Ok();
}

Status SnapshotWriter::Append(RecordTag tag, const std::string& payload) {
  if (file_ == nullptr) return Status::Error("writer not open");
  if (payload.size() > kMaxRecordLen) {
    return Status::Error("record exceeds kMaxRecordLen");
  }
  std::string framed;
  framed.reserve(payload.size() + 9);
  PutU8(&framed, static_cast<uint8_t>(tag));
  PutU32(&framed, static_cast<uint32_t>(payload.size()));
  framed.append(payload);
  uint32_t crc = Crc32(&tag, 1);
  crc = Crc32(payload.data(), payload.size(), crc);
  PutU32(&framed, crc);
  if (std::fwrite(framed.data(), 1, framed.size(), file_) != framed.size()) {
    Abandon();
    return Status::Error("write failed on " + tmp_path_);
  }
  return Status::Ok();
}

Status SnapshotWriter::Commit() {
  if (file_ == nullptr) return Status::Error("writer not open");
  bool ok = (std::fflush(file_) == 0);
  ok = (std::fclose(file_) == 0) && ok;
  file_ = nullptr;
  if (!ok) {
    std::remove(tmp_path_.c_str());
    return Status::Error("flush failed on " + tmp_path_);
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    return Status::Error("rename failed: " + tmp_path_ + " -> " + path_);
  }
  return Status::Ok();
}

// --- File reader ----------------------------------------------------------

SnapshotReader::~SnapshotReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool SnapshotReader::Open(const std::string& path, SnapshotOpenError* error) {
  *error = SnapshotOpenError{};
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    error->kind = SnapshotOpenError::Kind::kIo;
    error->detail = "cannot open " + path;
    return false;
  }
  char header[12];
  if (std::fread(header, 1, sizeof(header), file_) != sizeof(header)) {
    error->kind = SnapshotOpenError::Kind::kBadMagic;
    error->detail = "file shorter than the snapshot header";
    std::fclose(file_);
    file_ = nullptr;
    return false;
  }
  if (std::memcmp(header, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    error->kind = SnapshotOpenError::Kind::kBadMagic;
    error->detail = "bad magic (not a snapshot file)";
    std::fclose(file_);
    file_ = nullptr;
    return false;
  }
  uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<uint32_t>(static_cast<uint8_t>(header[8 + i]))
               << (8 * i);
  }
  if (version != kSnapshotFormatVersion) {
    error->kind = SnapshotOpenError::Kind::kBadVersion;
    error->file_version = version;
    error->detail = "snapshot format v" + std::to_string(version) +
                    ", this build reads v" +
                    std::to_string(kSnapshotFormatVersion);
    std::fclose(file_);
    file_ = nullptr;
    return false;
  }
  return true;
}

SnapshotReader::Outcome SnapshotReader::Next(uint8_t* tag,
                                             std::string* payload) {
  if (file_ == nullptr || done_) return Outcome::kEof;
  unsigned char head[5];
  size_t n = std::fread(head, 1, sizeof(head), file_);
  if (n == 0) {
    done_ = true;
    return Outcome::kEof;
  }
  if (n < sizeof(head)) {
    done_ = true;
    return Outcome::kTruncated;
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(head[1 + i]) << (8 * i);
  }
  if (len > kMaxRecordLen) {
    // A length this absurd means the framing itself is gone; there is no
    // trustworthy next-record boundary, so report the corruption and end
    // the scan on the following call.
    done_ = true;
    return Outcome::kCorrupt;
  }
  std::string body(len, '\0');
  if (len > 0 && std::fread(&body[0], 1, len, file_) != len) {
    done_ = true;
    return Outcome::kTruncated;
  }
  unsigned char crc_bytes[4];
  if (std::fread(crc_bytes, 1, sizeof(crc_bytes), file_) !=
      sizeof(crc_bytes)) {
    done_ = true;
    return Outcome::kTruncated;
  }
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(crc_bytes[i]) << (8 * i);
  }
  uint32_t crc = Crc32(head, 1);
  crc = Crc32(body.data(), body.size(), crc);
  if (crc != stored_crc) return Outcome::kCorrupt;
  *tag = head[0];
  payload->swap(body);
  return Outcome::kRecord;
}

// --- Artifact record codecs ----------------------------------------------

namespace {

void PutStringSet(std::string* out, const std::set<std::string>& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  for (const std::string& v : s) PutString(out, v);
}

bool ReadStringSet(ByteReader* r, std::set<std::string>* s) {
  uint32_t n = 0;
  if (!r->ReadU32(&n)) return false;
  s->clear();
  for (uint32_t i = 0; i < n; ++i) {
    std::string v;
    if (!r->ReadString(&v)) return false;
    s->insert(std::move(v));
  }
  return true;
}

void PutStringSetMap(std::string* out,
                     const std::map<std::string, std::set<std::string>>& m) {
  PutU32(out, static_cast<uint32_t>(m.size()));
  for (const auto& kv : m) {
    PutString(out, kv.first);
    PutStringSet(out, kv.second);
  }
}

bool ReadStringSetMap(ByteReader* r,
                      std::map<std::string, std::set<std::string>>* m) {
  uint32_t n = 0;
  if (!r->ReadU32(&n)) return false;
  m->clear();
  for (uint32_t i = 0; i < n; ++i) {
    std::string k;
    std::set<std::string> v;
    if (!r->ReadString(&k) || !ReadStringSet(r, &v)) return false;
    (*m)[std::move(k)] = std::move(v);
  }
  return true;
}

void PutLabelGraph(std::string* out, const LabelGraph& g) {
  PutStringSet(out, g.terminating);
  PutStringSetMap(out, g.edges);
  PutStringSetMap(out, g.closure);
}

bool ReadLabelGraph(ByteReader* r, LabelGraph* g) {
  return ReadStringSet(r, &g->terminating) && ReadStringSetMap(r, &g->edges) &&
         ReadStringSetMap(r, &g->closure);
}

void PutNfa(std::string* out, const Nfa& nfa) {
  PutU32(out, static_cast<uint32_t>(nfa.num_states));
  PutU32(out, static_cast<uint32_t>(nfa.start));
  PutU32(out, static_cast<uint32_t>(nfa.accepting.size()));
  for (bool a : nfa.accepting) PutBool(out, a);
  PutU32(out, static_cast<uint32_t>(nfa.trans.size()));
  for (const auto& edges : nfa.trans) {
    PutU32(out, static_cast<uint32_t>(edges.size()));
    for (const auto& e : edges) {
      PutString(out, e.first);
      PutU32(out, static_cast<uint32_t>(e.second));
    }
  }
}

bool ReadNfa(ByteReader* r, Nfa* nfa) {
  uint32_t num_states = 0, start = 0, num_acc = 0, num_trans = 0;
  if (!r->ReadU32(&num_states) || !r->ReadU32(&start)) return false;
  // Structural validation: a decoded automaton must be internally
  // consistent or the sibling decider would index out of bounds.
  if (num_states > kMaxRecordLen) return false;
  if (num_states > 0 && start >= num_states) return false;
  if (!r->ReadU32(&num_acc) || num_acc != num_states) return false;
  nfa->num_states = static_cast<int>(num_states);
  nfa->start = static_cast<int>(start);
  nfa->accepting.assign(num_states, false);
  for (uint32_t i = 0; i < num_acc; ++i) {
    bool a = false;
    if (!r->ReadBool(&a)) return false;
    nfa->accepting[i] = a;
  }
  if (!r->ReadU32(&num_trans) || num_trans != num_states) return false;
  nfa->trans.assign(num_states, {});
  for (uint32_t i = 0; i < num_trans; ++i) {
    uint32_t num_edges = 0;
    if (!r->ReadU32(&num_edges)) return false;
    nfa->trans[i].reserve(num_edges);
    for (uint32_t j = 0; j < num_edges; ++j) {
      std::string sym;
      uint32_t target = 0;
      if (!r->ReadString(&sym) || !r->ReadU32(&target)) return false;
      if (target >= num_states) return false;
      nfa->trans[i].emplace_back(std::move(sym), static_cast<int>(target));
    }
  }
  return true;
}

void PutWitness(std::string* out, const XmlTree& tree) {
  PutU32(out, static_cast<uint32_t>(tree.size()));
  for (int id = 0; id < tree.size(); ++id) {
    const XmlNode& node = tree.node(id);
    PutString(out, node.label);
    // Node 0 is the root (parent kNullNode); every later node's parent
    // precedes it, so replaying AddChild in id order reconstructs the tree.
    if (id > 0) PutU32(out, static_cast<uint32_t>(node.parent));
    PutU32(out, static_cast<uint32_t>(node.attrs.size()));
    for (const auto& attr : node.attrs) {
      PutString(out, attr.first);
      PutString(out, attr.second);
    }
  }
}

bool ReadWitness(ByteReader* r, XmlTree* tree) {
  uint32_t num_nodes = 0;
  if (!r->ReadU32(&num_nodes)) return false;
  if (num_nodes == 0 || num_nodes > kMaxRecordLen) return false;
  for (uint32_t id = 0; id < num_nodes; ++id) {
    std::string label;
    if (!r->ReadString(&label)) return false;
    if (id == 0) {
      tree->CreateRoot(label);
    } else {
      uint32_t parent = 0;
      if (!r->ReadU32(&parent) || parent >= id) return false;
      tree->AddChild(static_cast<NodeId>(parent), label);
    }
    uint32_t num_attrs = 0;
    if (!r->ReadU32(&num_attrs)) return false;
    for (uint32_t a = 0; a < num_attrs; ++a) {
      std::string name, value;
      if (!r->ReadString(&name) || !r->ReadString(&value)) return false;
      tree->SetAttr(static_cast<NodeId>(id), name, value);
    }
  }
  return true;
}

void PutMinSizes(std::string* out,
                 const std::map<std::string, long long>& sizes) {
  PutU32(out, static_cast<uint32_t>(sizes.size()));
  for (const auto& kv : sizes) {
    PutString(out, kv.first);
    PutU64(out, static_cast<uint64_t>(kv.second));
  }
}

bool ReadMinSizes(ByteReader* r, std::map<std::string, long long>* sizes) {
  uint32_t n = 0;
  if (!r->ReadU32(&n)) return false;
  sizes->clear();
  for (uint32_t i = 0; i < n; ++i) {
    std::string k;
    uint64_t v = 0;
    if (!r->ReadString(&k) || !r->ReadU64(&v)) return false;
    (*sizes)[std::move(k)] = static_cast<long long>(v);
  }
  return true;
}

}  // namespace

std::string EncodeCompiledDtdRecord(const CompiledDtd& compiled) {
  std::string out;
  PutString(&out, compiled.dtd.ToString());
  PutU64(&out, compiled.fingerprint);
  PutBool(&out, compiled.disjunction_free);
  PutLabelGraph(&out, compiled.graph);
  PutMinSizes(&out, compiled.min_sizes);
  PutU32(&out, static_cast<uint32_t>(compiled.content_nfas.size()));
  for (const auto& kv : compiled.content_nfas) {
    PutString(&out, kv.first);
    PutNfa(&out, kv.second);
  }
  PutString(&out, compiled.norm.dtd.ToString());
  PutStringSet(&out, compiled.norm.new_types);
  PutLabelGraph(&out, compiled.norm_graph);
  return out;
}

Result<std::shared_ptr<const CompiledDtd>> DecodeCompiledDtdRecord(
    const std::string& payload) {
  using R = Result<std::shared_ptr<const CompiledDtd>>;
  ByteReader r(payload);
  auto compiled = std::make_shared<CompiledDtd>();

  std::string dtd_text;
  uint64_t fingerprint = 0;
  if (!r.ReadString(&dtd_text) || !r.ReadU64(&fingerprint)) {
    return R::Error("short compiled-DTD record");
  }
  Result<Dtd> dtd = Dtd::Parse(dtd_text);
  if (!dtd.ok()) {
    return R::Error("embedded DTD does not parse: " + dtd.error());
  }
  // The collision-verification anchor: the fingerprint this record is keyed
  // by must be derivable from its own schema text. A forged or drifted key
  // is rejected here, so memo entries resolved against this record can rely
  // on the fingerprint meaning what it claims.
  if (dtd.value().Fingerprint() != fingerprint) {
    return R::Error("fingerprint does not match the embedded DTD");
  }
  compiled->dtd = std::move(dtd).value();
  compiled->shared_dtd = std::make_shared<const Dtd>(compiled->dtd);
  compiled->fingerprint = fingerprint;

  if (!r.ReadBool(&compiled->disjunction_free) ||
      !ReadLabelGraph(&r, &compiled->graph) ||
      !ReadMinSizes(&r, &compiled->min_sizes)) {
    return R::Error("short compiled-DTD record");
  }
  uint32_t num_nfas = 0;
  if (!r.ReadU32(&num_nfas)) return R::Error("short compiled-DTD record");
  for (uint32_t i = 0; i < num_nfas; ++i) {
    std::string type;
    Nfa nfa;
    if (!r.ReadString(&type) || !ReadNfa(&r, &nfa)) {
      return R::Error("malformed content-model automaton");
    }
    compiled->content_nfas[std::move(type)] = std::move(nfa);
  }
  std::string norm_text;
  if (!r.ReadString(&norm_text)) return R::Error("short compiled-DTD record");
  Result<Dtd> norm = Dtd::Parse(norm_text);
  if (!norm.ok()) {
    return R::Error("embedded normal form does not parse: " + norm.error());
  }
  compiled->norm.dtd = std::move(norm).value();
  if (!ReadStringSet(&r, &compiled->norm.new_types) ||
      !ReadLabelGraph(&r, &compiled->norm_graph) || !r.AtEnd()) {
    return R::Error("short compiled-DTD record");
  }
  return R(std::shared_ptr<const CompiledDtd>(std::move(compiled)));
}

std::string EncodeMemoRecord(const MemoRecord& record) {
  std::string out;
  PutString(&out, record.canonical_query);
  PutU64(&out, record.dtd_fingerprint);
  PutU64(&out, record.options_digest);
  PutString(&out, record.algorithm);
  PutU8(&out, static_cast<uint8_t>(record.verdict));
  PutString(&out, record.note);
  PutBool(&out, record.has_witness);
  if (record.has_witness) PutWitness(&out, record.witness);
  return out;
}

Result<MemoRecord> DecodeMemoRecord(const std::string& payload) {
  using R = Result<MemoRecord>;
  ByteReader r(payload);
  MemoRecord record;
  uint8_t verdict = 0;
  if (!r.ReadString(&record.canonical_query) ||
      !r.ReadU64(&record.dtd_fingerprint) ||
      !r.ReadU64(&record.options_digest) || !r.ReadString(&record.algorithm) ||
      !r.ReadU8(&verdict) || !r.ReadString(&record.note) ||
      !r.ReadBool(&record.has_witness)) {
    return R::Error("short memo record");
  }
  if (verdict > static_cast<uint8_t>(SatVerdict::kUnknown)) {
    return R::Error("unknown verdict code");
  }
  record.verdict = static_cast<SatVerdict>(verdict);
  if (record.has_witness && !ReadWitness(&r, &record.witness)) {
    return R::Error("malformed witness tree");
  }
  if (!r.AtEnd()) return R::Error("trailing bytes in memo record");
  return R(std::move(record));
}

}  // namespace store
}  // namespace xpathsat
