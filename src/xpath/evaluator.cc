#include "src/xpath/evaluator.h"

#include <algorithm>

namespace xpathsat {

namespace {

void SortUnique(std::vector<NodeId>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

void CollectSubtree(const XmlTree& tree, NodeId n, std::vector<NodeId>* out) {
  out->push_back(n);
  for (NodeId c : tree.children(n)) CollectSubtree(tree, c, out);
}

}  // namespace

std::vector<NodeId> EvalPath(const XmlTree& tree, const PathExpr& p,
                             const std::vector<NodeId>& from) {
  std::vector<NodeId> out;
  switch (p.kind) {
    case PathKind::kEmpty:
      out = from;
      break;
    case PathKind::kLabel:
      for (NodeId n : from) {
        for (NodeId c : tree.children(n)) {
          if (tree.label(c) == p.label) out.push_back(c);
        }
      }
      break;
    case PathKind::kChildAny:
      for (NodeId n : from) {
        for (NodeId c : tree.children(n)) out.push_back(c);
      }
      break;
    case PathKind::kDescOrSelf:
      for (NodeId n : from) CollectSubtree(tree, n, &out);
      break;
    case PathKind::kParent:
      for (NodeId n : from) {
        if (tree.parent(n) != kNullNode) out.push_back(tree.parent(n));
      }
      break;
    case PathKind::kAncOrSelf:
      for (NodeId n : from) {
        NodeId cur = n;
        while (cur != kNullNode) {
          out.push_back(cur);
          cur = tree.parent(cur);
        }
      }
      break;
    case PathKind::kRightSib:
      for (NodeId n : from) {
        NodeId s = tree.NextSibling(n);
        if (s != kNullNode) out.push_back(s);
      }
      break;
    case PathKind::kLeftSib:
      for (NodeId n : from) {
        NodeId s = tree.PrevSibling(n);
        if (s != kNullNode) out.push_back(s);
      }
      break;
    case PathKind::kRightSibStar:
      for (NodeId n : from) {
        NodeId cur = n;
        while (cur != kNullNode) {
          out.push_back(cur);
          cur = tree.NextSibling(cur);
        }
      }
      break;
    case PathKind::kLeftSibStar:
      for (NodeId n : from) {
        NodeId cur = n;
        while (cur != kNullNode) {
          out.push_back(cur);
          cur = tree.PrevSibling(cur);
        }
      }
      break;
    case PathKind::kSeq: {
      std::vector<NodeId> mid = EvalPath(tree, *p.lhs, from);
      return EvalPath(tree, *p.rhs, mid);
    }
    case PathKind::kUnion: {
      out = EvalPath(tree, *p.lhs, from);
      std::vector<NodeId> r = EvalPath(tree, *p.rhs, from);
      out.insert(out.end(), r.begin(), r.end());
      break;
    }
    case PathKind::kFilter: {
      std::vector<NodeId> mid = EvalPath(tree, *p.lhs, from);
      for (NodeId n : mid) {
        if (EvalQualifier(tree, *p.qual, n)) out.push_back(n);
      }
      break;
    }
  }
  SortUnique(&out);
  return out;
}

bool EvalQualifier(const XmlTree& tree, const Qualifier& q, NodeId n) {
  switch (q.kind) {
    case QualKind::kPath:
      return !EvalPath(tree, *q.path, {n}).empty();
    case QualKind::kLabelTest:
      return tree.label(n) == q.label;
    case QualKind::kAttrCmpConst: {
      for (NodeId m : EvalPath(tree, *q.path, {n})) {
        const std::string* v = tree.GetAttr(m, q.attr);
        if (v == nullptr) continue;
        if (q.op == CmpOp::kEq ? (*v == q.constant) : (*v != q.constant)) {
          return true;
        }
      }
      return false;
    }
    case QualKind::kAttrJoin: {
      std::vector<NodeId> l = EvalPath(tree, *q.path, {n});
      std::vector<NodeId> r = EvalPath(tree, *q.path2, {n});
      for (NodeId a : l) {
        const std::string* va = tree.GetAttr(a, q.attr);
        if (va == nullptr) continue;
        for (NodeId b : r) {
          const std::string* vb = tree.GetAttr(b, q.attr2);
          if (vb == nullptr) continue;
          if (q.op == CmpOp::kEq ? (*va == *vb) : (*va != *vb)) return true;
        }
      }
      return false;
    }
    case QualKind::kAnd:
      return EvalQualifier(tree, *q.q1, n) && EvalQualifier(tree, *q.q2, n);
    case QualKind::kOr:
      return EvalQualifier(tree, *q.q1, n) || EvalQualifier(tree, *q.q2, n);
    case QualKind::kNot:
      return !EvalQualifier(tree, *q.q1, n);
  }
  return false;
}

bool Satisfies(const XmlTree& tree, const PathExpr& p) {
  if (tree.empty()) return false;
  return SatisfiesAt(tree, p, tree.root());
}

bool SatisfiesAt(const XmlTree& tree, const PathExpr& p, NodeId context) {
  return !EvalPath(tree, p, {context}).empty();
}

}  // namespace xpathsat
