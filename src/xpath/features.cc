#include "src/xpath/features.h"

#include <algorithm>
#include <vector>

namespace xpathsat {

namespace {

void Merge(Features* a, const Features& b) {
  a->label_step |= b.label_step;
  a->wildcard |= b.wildcard;
  a->descendant |= b.descendant;
  a->parent |= b.parent;
  a->ancestor |= b.ancestor;
  a->right_sib |= b.right_sib;
  a->left_sib |= b.left_sib;
  a->right_sib_star |= b.right_sib_star;
  a->left_sib_star |= b.left_sib_star;
  a->union_op |= b.union_op;
  a->qualifier |= b.qualifier;
  a->negation |= b.negation;
  a->data_values |= b.data_values;
  a->label_test |= b.label_test;
}

}  // namespace

Features DetectFeatures(const PathExpr& p) {
  Features f;
  switch (p.kind) {
    case PathKind::kEmpty: break;
    case PathKind::kLabel: f.label_step = true; break;
    case PathKind::kChildAny: f.wildcard = true; break;
    case PathKind::kDescOrSelf: f.descendant = true; break;
    case PathKind::kParent: f.parent = true; break;
    case PathKind::kAncOrSelf: f.ancestor = true; break;
    case PathKind::kRightSib: f.right_sib = true; break;
    case PathKind::kLeftSib: f.left_sib = true; break;
    case PathKind::kRightSibStar: f.right_sib_star = true; break;
    case PathKind::kLeftSibStar: f.left_sib_star = true; break;
    case PathKind::kSeq:
      Merge(&f, DetectFeatures(*p.lhs));
      Merge(&f, DetectFeatures(*p.rhs));
      break;
    case PathKind::kUnion:
      f.union_op = true;
      Merge(&f, DetectFeatures(*p.lhs));
      Merge(&f, DetectFeatures(*p.rhs));
      break;
    case PathKind::kFilter:
      f.qualifier = true;
      Merge(&f, DetectFeatures(*p.lhs));
      Merge(&f, DetectFeatures(*p.qual));
      break;
  }
  return f;
}

Features DetectFeatures(const Qualifier& q) {
  Features f;
  switch (q.kind) {
    case QualKind::kPath:
      Merge(&f, DetectFeatures(*q.path));
      break;
    case QualKind::kLabelTest:
      f.label_test = true;
      break;
    case QualKind::kAttrCmpConst:
      f.data_values = true;
      Merge(&f, DetectFeatures(*q.path));
      break;
    case QualKind::kAttrJoin:
      f.data_values = true;
      Merge(&f, DetectFeatures(*q.path));
      Merge(&f, DetectFeatures(*q.path2));
      break;
    case QualKind::kAnd:
      Merge(&f, DetectFeatures(*q.q1));
      Merge(&f, DetectFeatures(*q.q2));
      break;
    case QualKind::kOr:
      f.union_op = true;
      Merge(&f, DetectFeatures(*q.q1));
      Merge(&f, DetectFeatures(*q.q2));
      break;
    case QualKind::kNot:
      f.negation = true;
      Merge(&f, DetectFeatures(*q.q1));
      break;
  }
  return f;
}

namespace {
int CapDepth(long long d) {
  return d >= kUnboundedDepth ? kUnboundedDepth : static_cast<int>(d);
}
}  // namespace

int DownwardDepth(const PathExpr& p) {
  switch (p.kind) {
    case PathKind::kEmpty:
    case PathKind::kParent:
    case PathKind::kAncOrSelf:
    case PathKind::kRightSib:
    case PathKind::kLeftSib:
    case PathKind::kRightSibStar:
    case PathKind::kLeftSibStar:
      return 0;
    case PathKind::kLabel:
    case PathKind::kChildAny:
      return 1;
    case PathKind::kDescOrSelf:
      return kUnboundedDepth;
    case PathKind::kSeq:
      return CapDepth(static_cast<long long>(DownwardDepth(*p.lhs)) +
                      DownwardDepth(*p.rhs));
    case PathKind::kUnion:
      return std::max(DownwardDepth(*p.lhs), DownwardDepth(*p.rhs));
    case PathKind::kFilter:
      return CapDepth(static_cast<long long>(DownwardDepth(*p.lhs)) +
                      DownwardDepth(*p.qual));
  }
  return kUnboundedDepth;
}

int DownwardDepth(const Qualifier& q) {
  switch (q.kind) {
    case QualKind::kPath:
      return DownwardDepth(*q.path);
    case QualKind::kLabelTest:
      return 0;
    case QualKind::kAttrCmpConst:
      return DownwardDepth(*q.path);
    case QualKind::kAttrJoin:
      return std::max(DownwardDepth(*q.path), DownwardDepth(*q.path2));
    case QualKind::kAnd:
    case QualKind::kOr:
      return std::max(DownwardDepth(*q.q1), DownwardDepth(*q.q2));
    case QualKind::kNot:
      return DownwardDepth(*q.q1);
  }
  return kUnboundedDepth;
}

int CountSteps(const PathExpr& p) {
  switch (p.kind) {
    case PathKind::kEmpty:
      return 0;
    case PathKind::kSeq:
    case PathKind::kUnion:
      return CapDepth(static_cast<long long>(CountSteps(*p.lhs)) +
                      CountSteps(*p.rhs));
    case PathKind::kFilter:
      return CapDepth(static_cast<long long>(CountSteps(*p.lhs)) +
                      CountSteps(*p.qual));
    default:
      return 1;
  }
}

int CountSteps(const Qualifier& q) {
  long long n = 0;
  if (q.path) n += CountSteps(*q.path);
  if (q.path2) n += CountSteps(*q.path2);
  if (q.q1) n += CountSteps(*q.q1);
  if (q.q2) n += CountSteps(*q.q2);
  return CapDepth(n);
}

std::string Features::FragmentName() const {
  std::vector<std::string> ops;
  if (label_step || wildcard) ops.push_back("down");
  if (descendant) ops.push_back("ds");
  if (parent) ops.push_back("up");
  if (ancestor) ops.push_back("as");
  if (right_sib || left_sib) ops.push_back("sib");
  if (right_sib_star || left_sib_star) ops.push_back("sib*");
  if (union_op) ops.push_back("union");
  if (qualifier) ops.push_back("[]");
  if (data_values) ops.push_back("=");
  if (negation) ops.push_back("not");
  std::string out = "X(";
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i > 0) out += ",";
    out += ops[i];
  }
  return out + ")";
}

}  // namespace xpathsat
