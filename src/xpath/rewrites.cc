#include "src/xpath/rewrites.h"

#include <functional>
#include <vector>

namespace xpathsat {

std::unique_ptr<PathExpr> InversePath(const PathExpr& p) {
  switch (p.kind) {
    case PathKind::kEmpty:
      return PathExpr::Empty();
    case PathKind::kLabel:
      // inverse(l) = ε[lab() = l]/↑
      return PathExpr::Seq(
          PathExpr::Filter(PathExpr::Empty(), Qualifier::LabelTest(p.label)),
          PathExpr::Axis(PathKind::kParent));
    case PathKind::kChildAny:
      return PathExpr::Axis(PathKind::kParent);
    case PathKind::kDescOrSelf:
      return PathExpr::Axis(PathKind::kAncOrSelf);
    case PathKind::kParent:
      return PathExpr::Axis(PathKind::kChildAny);
    case PathKind::kAncOrSelf:
      return PathExpr::Axis(PathKind::kDescOrSelf);
    case PathKind::kRightSib:
      return PathExpr::Axis(PathKind::kLeftSib);
    case PathKind::kLeftSib:
      return PathExpr::Axis(PathKind::kRightSib);
    case PathKind::kRightSibStar:
      return PathExpr::Axis(PathKind::kLeftSibStar);
    case PathKind::kLeftSibStar:
      return PathExpr::Axis(PathKind::kRightSibStar);
    case PathKind::kSeq:
      return PathExpr::Seq(InversePath(*p.rhs), InversePath(*p.lhs));
    case PathKind::kUnion:
      return PathExpr::Union(InversePath(*p.lhs), InversePath(*p.rhs));
    case PathKind::kFilter:
      // inverse(p1[q]) = ε[q]/inverse(p1)
      return PathExpr::Seq(PathExpr::Filter(PathExpr::Empty(), p.qual->Clone()),
                           InversePath(*p.lhs));
  }
  return PathExpr::Empty();
}

namespace {

// Builder for the f(p) rewriting of Prop 3.3.
class NormalizedRewriter {
 public:
  NormalizedRewriter(const Dtd& original, const NormalizedDtd& norm) {
    for (const auto& t : original.types()) old_labels_.push_back(t.name);
    chains_ = NewTypeDescentChains(norm);
  }

  Result<std::unique_ptr<PathExpr>> Rewrite(const PathExpr& p) {
    std::unique_ptr<PathExpr> out = RewritePath(p);
    if (out == nullptr) {
      return Result<std::unique_ptr<PathExpr>>::Error(error_);
    }
    return out;
  }

 private:
  // ∇ (skip downward): ε ∪ the label chains of new types.
  std::unique_ptr<PathExpr> SkipDown() const {
    std::vector<std::unique_ptr<PathExpr>> parts;
    parts.push_back(PathExpr::Empty());
    for (const auto& chain : chains_) {
      std::vector<std::unique_ptr<PathExpr>> steps;
      for (const auto& t : chain) steps.push_back(PathExpr::Label(t));
      parts.push_back(PathExpr::SeqAll(std::move(steps)));
    }
    return PathExpr::UnionAll(std::move(parts));
  }

  // ∨_{A in old Ele} lab() = A.
  std::unique_ptr<Qualifier> IsOld() const {
    std::vector<std::unique_ptr<Qualifier>> tests;
    for (const auto& a : old_labels_) tests.push_back(Qualifier::LabelTest(a));
    return Qualifier::OrAll(std::move(tests));
  }

  // ∪_{A in old Ele} A as a single wildcard-with-old-label step.
  std::unique_ptr<PathExpr> AnyOldChild() const {
    return PathExpr::Filter(PathExpr::Axis(PathKind::kChildAny), IsOld());
  }

  std::unique_ptr<PathExpr> Fail(const std::string& msg) {
    if (error_.empty()) error_ = msg;
    return nullptr;
  }

  std::unique_ptr<PathExpr> RewritePath(const PathExpr& p) {
    switch (p.kind) {
      case PathKind::kEmpty:
        return PathExpr::Empty();
      case PathKind::kLabel:
        // f(A) = ∇/A.
        return PathExpr::Seq(SkipDown(), PathExpr::Label(p.label));
      case PathKind::kChildAny:
        // f(↓) = ∇/(any old-labeled child).
        return PathExpr::Seq(SkipDown(), AnyOldChild());
      case PathKind::kDescOrSelf:
        // f(↓*) = ε ∪ ↓*/(any old-labeled child).
        return PathExpr::Union(
            PathExpr::Empty(),
            PathExpr::Seq(PathExpr::Axis(PathKind::kDescOrSelf),
                          AnyOldChild()));
      case PathKind::kParent: {
        // f(↑) = ↑[isOld] ∪ the reversed new-type chains followed by ↑.
        std::vector<std::unique_ptr<PathExpr>> parts;
        parts.push_back(
            PathExpr::Filter(PathExpr::Axis(PathKind::kParent), IsOld()));
        for (const auto& chain : chains_) {
          std::vector<std::unique_ptr<PathExpr>> steps;
          for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
            steps.push_back(PathExpr::Filter(PathExpr::Axis(PathKind::kParent),
                                             Qualifier::LabelTest(*it)));
          }
          steps.push_back(PathExpr::Axis(PathKind::kParent));
          parts.push_back(PathExpr::SeqAll(std::move(steps)));
        }
        return PathExpr::UnionAll(std::move(parts));
      }
      case PathKind::kAncOrSelf:
        // f(↑*) = ε ∪ ↑*[isOld] excluding self-duplication is harmless.
        return PathExpr::Union(
            PathExpr::Empty(),
            PathExpr::Filter(PathExpr::Axis(PathKind::kAncOrSelf), IsOld()));
      case PathKind::kRightSib:
      case PathKind::kLeftSib:
      case PathKind::kRightSibStar:
      case PathKind::kLeftSibStar:
        return Fail("f(p) is undefined for sibling axes (Prop 3.3)");
      case PathKind::kSeq: {
        auto l = RewritePath(*p.lhs);
        if (!l) return nullptr;
        auto r = RewritePath(*p.rhs);
        if (!r) return nullptr;
        return PathExpr::Seq(std::move(l), std::move(r));
      }
      case PathKind::kUnion: {
        auto l = RewritePath(*p.lhs);
        if (!l) return nullptr;
        auto r = RewritePath(*p.rhs);
        if (!r) return nullptr;
        return PathExpr::Union(std::move(l), std::move(r));
      }
      case PathKind::kFilter: {
        auto l = RewritePath(*p.lhs);
        if (!l) return nullptr;
        auto q = RewriteQual(*p.qual);
        if (!q) return nullptr;
        return PathExpr::Filter(std::move(l), std::move(q));
      }
    }
    return nullptr;
  }

  std::unique_ptr<Qualifier> RewriteQual(const Qualifier& q) {
    switch (q.kind) {
      case QualKind::kPath: {
        auto p = RewritePath(*q.path);
        if (!p) return nullptr;
        return Qualifier::Path(std::move(p));
      }
      case QualKind::kLabelTest:
        return Qualifier::LabelTest(q.label);
      case QualKind::kAttrCmpConst: {
        auto p = RewritePath(*q.path);
        if (!p) return nullptr;
        return Qualifier::AttrCmpConst(std::move(p), q.attr, q.op, q.constant);
      }
      case QualKind::kAttrJoin: {
        auto p1 = RewritePath(*q.path);
        if (!p1) return nullptr;
        auto p2 = RewritePath(*q.path2);
        if (!p2) return nullptr;
        return Qualifier::AttrJoin(std::move(p1), q.attr, q.op, std::move(p2),
                                   q.attr2);
      }
      case QualKind::kAnd: {
        auto a = RewriteQual(*q.q1);
        if (!a) return nullptr;
        auto b = RewriteQual(*q.q2);
        if (!b) return nullptr;
        return Qualifier::And(std::move(a), std::move(b));
      }
      case QualKind::kOr: {
        auto a = RewriteQual(*q.q1);
        if (!a) return nullptr;
        auto b = RewriteQual(*q.q2);
        if (!b) return nullptr;
        return Qualifier::Or(std::move(a), std::move(b));
      }
      case QualKind::kNot: {
        auto a = RewriteQual(*q.q1);
        if (!a) return nullptr;
        return Qualifier::Not(std::move(a));
      }
    }
    return nullptr;
  }

  std::vector<std::string> old_labels_;
  std::vector<std::vector<std::string>> chains_;
  std::string error_;
};

}  // namespace

Result<std::unique_ptr<PathExpr>> RewriteForNormalizedDtd(
    const PathExpr& p, const Dtd& original, const NormalizedDtd& norm) {
  return NormalizedRewriter(original, norm).Rewrite(p);
}

namespace {

std::unique_ptr<PathExpr> AxisChainUnion(PathKind axis, int depth_bound) {
  std::vector<std::unique_ptr<PathExpr>> parts;
  parts.push_back(PathExpr::Empty());
  std::unique_ptr<PathExpr> chain;
  for (int k = 1; k <= depth_bound; ++k) {
    chain = chain ? PathExpr::Seq(std::move(chain), PathExpr::Axis(axis))
                  : PathExpr::Axis(axis);
    parts.push_back(chain->Clone());
  }
  return PathExpr::UnionAll(std::move(parts));
}

std::unique_ptr<Qualifier> EliminateRecursionQual(const Qualifier& q, int k);

std::unique_ptr<PathExpr> EliminateRecursionPath(const PathExpr& p, int k) {
  switch (p.kind) {
    case PathKind::kDescOrSelf:
      return AxisChainUnion(PathKind::kChildAny, k);
    case PathKind::kAncOrSelf:
      return AxisChainUnion(PathKind::kParent, k);
    case PathKind::kSeq:
      return PathExpr::Seq(EliminateRecursionPath(*p.lhs, k),
                           EliminateRecursionPath(*p.rhs, k));
    case PathKind::kUnion:
      return PathExpr::Union(EliminateRecursionPath(*p.lhs, k),
                             EliminateRecursionPath(*p.rhs, k));
    case PathKind::kFilter:
      return PathExpr::Filter(EliminateRecursionPath(*p.lhs, k),
                              EliminateRecursionQual(*p.qual, k));
    default:
      return p.Clone();
  }
}

std::unique_ptr<Qualifier> EliminateRecursionQual(const Qualifier& q, int k) {
  auto out = q.Clone();
  switch (q.kind) {
    case QualKind::kPath:
      out->path = EliminateRecursionPath(*q.path, k);
      break;
    case QualKind::kAttrCmpConst:
      out->path = EliminateRecursionPath(*q.path, k);
      break;
    case QualKind::kAttrJoin:
      out->path = EliminateRecursionPath(*q.path, k);
      out->path2 = EliminateRecursionPath(*q.path2, k);
      break;
    case QualKind::kAnd:
    case QualKind::kOr:
      out->q1 = EliminateRecursionQual(*q.q1, k);
      if (q.q2) out->q2 = EliminateRecursionQual(*q.q2, k);
      break;
    case QualKind::kNot:
      out->q1 = EliminateRecursionQual(*q.q1, k);
      break;
    case QualKind::kLabelTest:
      break;
  }
  return out;
}

}  // namespace

std::unique_ptr<PathExpr> EliminateRecursion(const PathExpr& p,
                                             int depth_bound) {
  return EliminateRecursionPath(p, depth_bound);
}

namespace {

// Flattens a pure step sequence (ε, labels, ↓, ↑); fails on anything else.
bool FlattenSteps(const PathExpr& p, std::vector<const PathExpr*>* out) {
  switch (p.kind) {
    case PathKind::kSeq:
      return FlattenSteps(*p.lhs, out) && FlattenSteps(*p.rhs, out);
    case PathKind::kEmpty:
    case PathKind::kLabel:
    case PathKind::kChildAny:
    case PathKind::kParent:
      out->push_back(&p);
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<UpDownRewrite> RewriteUpDownToQualifiers(const PathExpr& p) {
  std::vector<const PathExpr*> steps;
  if (!FlattenSteps(p, &steps)) {
    return Result<UpDownRewrite>::Error(
        "query is not in X(down,up): only ε, label, ↓, ↑ steps allowed");
  }
  // Entries simulate the navigation; popping on ↑ turns the popped downward
  // step into a qualifier on the node below (rules (1)-(4) of Thm 6.8(2)).
  struct Entry {
    std::unique_ptr<PathExpr> step;  // ε for the virtual root entry
    std::vector<std::unique_ptr<Qualifier>> quals;
  };
  std::vector<Entry> stack;
  stack.push_back({PathExpr::Empty(), {}});
  for (const PathExpr* s : steps) {
    switch (s->kind) {
      case PathKind::kEmpty:
        break;  // identity
      case PathKind::kLabel:
      case PathKind::kChildAny:
        stack.push_back({s->Clone(), {}});
        break;
      case PathKind::kParent: {
        if (stack.size() == 1) {
          // ↑ above the context root: unsatisfiable at the root.
          UpDownRewrite out;
          out.always_unsat = true;
          return out;
        }
        Entry e = std::move(stack.back());
        stack.pop_back();
        std::unique_ptr<PathExpr> path = std::move(e.step);
        for (auto& q : e.quals) {
          path = PathExpr::Filter(std::move(path), std::move(q));
        }
        stack.back().quals.push_back(Qualifier::Path(std::move(path)));
        break;
      }
      default:
        return Result<UpDownRewrite>::Error("unexpected step");
    }
  }
  // Assemble ε[q...]/s1[q...]/s2[q...]
  std::vector<std::unique_ptr<PathExpr>> parts;
  for (size_t i = 0; i < stack.size(); ++i) {
    Entry& e = stack[i];
    if (i == 0 && e.quals.empty()) continue;  // skip bare virtual root
    std::unique_ptr<PathExpr> part = std::move(e.step);
    for (auto& q : e.quals) {
      part = PathExpr::Filter(std::move(part), std::move(q));
    }
    parts.push_back(std::move(part));
  }
  UpDownRewrite out;
  if (parts.empty()) {
    out.path = PathExpr::Empty();
  } else {
    out.path = PathExpr::SeqAll(std::move(parts));
  }
  return out;
}

namespace {

// X(↓,[]) -> X(↓,↑): descent with depth accounting.
struct Descent {
  std::unique_ptr<PathExpr> path;
  int depth = 0;
  bool ok = false;
};

Descent DescendPath(const PathExpr& p);

// Round trip for a qualifier: a path that starts and ends at the same node.
std::unique_ptr<PathExpr> QualRoundTrip(const Qualifier& q) {
  switch (q.kind) {
    case QualKind::kPath: {
      Descent d = DescendPath(*q.path);
      if (!d.ok) return nullptr;
      std::unique_ptr<PathExpr> out = std::move(d.path);
      for (int i = 0; i < d.depth; ++i) {
        out = PathExpr::Seq(std::move(out), PathExpr::Axis(PathKind::kParent));
      }
      return out;
    }
    case QualKind::kAnd: {
      auto a = QualRoundTrip(*q.q1);
      if (!a) return nullptr;
      auto b = QualRoundTrip(*q.q2);
      if (!b) return nullptr;
      return PathExpr::Seq(std::move(a), std::move(b));
    }
    default:
      return nullptr;  // label tests / or / not / data not expressible
  }
}

Descent DescendPath(const PathExpr& p) {
  Descent out;
  switch (p.kind) {
    case PathKind::kEmpty:
      out.path = PathExpr::Empty();
      out.depth = 0;
      out.ok = true;
      return out;
    case PathKind::kLabel:
    case PathKind::kChildAny:
      out.path = p.Clone();
      out.depth = 1;
      out.ok = true;
      return out;
    case PathKind::kSeq: {
      Descent a = DescendPath(*p.lhs);
      if (!a.ok) return out;
      Descent b = DescendPath(*p.rhs);
      if (!b.ok) return out;
      out.path = PathExpr::Seq(std::move(a.path), std::move(b.path));
      out.depth = a.depth + b.depth;
      out.ok = true;
      return out;
    }
    case PathKind::kFilter: {
      Descent a = DescendPath(*p.lhs);
      if (!a.ok) return out;
      auto trip = QualRoundTrip(*p.qual);
      if (!trip) return out;
      out.path = PathExpr::Seq(std::move(a.path), std::move(trip));
      out.depth = a.depth;
      out.ok = true;
      return out;
    }
    default:
      return out;
  }
}

}  // namespace

Result<std::unique_ptr<PathExpr>> RewriteQualifiersToUpDown(const PathExpr& p) {
  Descent d = DescendPath(p);
  if (!d.ok) {
    return Result<std::unique_ptr<PathExpr>>::Error(
        "query outside the label-test-free fragment X(down,[]) "
        "(Thm 6.6(3) rewriting)");
  }
  return std::move(d.path);
}

}  // namespace xpathsat
