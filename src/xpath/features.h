// Fragment detection: which of the paper's operators a query uses. The
// satisfiability facade uses this to dispatch to the right decision procedure,
// mirroring the fragment notation X(↓,↓*,↑,↑*,∪,[],=,¬) of Sec. 2.2.
#ifndef XPATHSAT_XPATH_FEATURES_H_
#define XPATHSAT_XPATH_FEATURES_H_

#include <string>

#include "src/xpath/ast.h"

namespace xpathsat {

/// Operator usage of a query.
struct Features {
  bool label_step = false;     // l
  bool wildcard = false;       // ↓
  bool descendant = false;     // ↓*
  bool parent = false;         // ↑
  bool ancestor = false;       // ↑*
  bool right_sib = false;      // →
  bool left_sib = false;       // ←
  bool right_sib_star = false; // →*
  bool left_sib_star = false;  // ←*
  bool union_op = false;       // ∪ or ∨
  bool qualifier = false;      // [ ]
  bool negation = false;       // ¬
  bool data_values = false;    // = / != comparisons
  bool label_test = false;     // lab() = A

  /// ↑ or ↑*.
  bool HasUpward() const { return parent || ancestor; }
  /// ↓* or ↑*.
  bool HasRecursion() const { return descendant || ancestor; }
  /// Any sibling axis.
  bool HasSibling() const {
    return right_sib || left_sib || right_sib_star || left_sib_star;
  }
  /// No negation (the positive fragments of Sec. 4).
  bool IsPositive() const { return !negation; }

  /// Paper-style fragment name, e.g. "X(down,ds,up,union,[],=,not)".
  std::string FragmentName() const;
};

/// Detects the operators used by a path / qualifier.
Features DetectFeatures(const PathExpr& p);
Features DetectFeatures(const Qualifier& q);

/// Conservative bound on the depth below the context node a query can
/// inspect. Recursive axes yield kUnboundedDepth.
inline constexpr int kUnboundedDepth = 1 << 20;
int DownwardDepth(const PathExpr& p);
int DownwardDepth(const Qualifier& q);

/// Number of navigation steps (labels, axes) in the query — an upper bound on
/// the number of witness children any single node needs (the witness(n, T0)
/// argument of Thm 5.5 adds at most one child per subquery step).
int CountSteps(const PathExpr& p);
int CountSteps(const Qualifier& q);

}  // namespace xpathsat

#endif  // XPATHSAT_XPATH_FEATURES_H_
