// Parser for the concrete XPath syntax documented in ast.h.
//
// Path syntax:    .  NAME  *  **  ^  ^^  >  >>  <  <<  p/p  p|p  p[q]  (p)
// Qualifier:      p  label()=NAME  p/@a="c"  p/@a!=p2/@b  q&&q  q||q  !q  (q)
//
// Constants in data-value comparisons must be double-quoted. `label` is a
// reserved word inside qualifiers (label tests); use a different element name.
#ifndef XPATHSAT_XPATH_PARSER_H_
#define XPATHSAT_XPATH_PARSER_H_

#include <memory>
#include <string>

#include "src/util/status.h"
#include "src/xpath/ast.h"

namespace xpathsat {

/// Parses a path expression; the whole input must be consumed.
Result<std::unique_ptr<PathExpr>> ParsePath(const std::string& text);

/// Parses a qualifier; the whole input must be consumed.
Result<std::unique_ptr<Qualifier>> ParseQualifier(const std::string& text);

}  // namespace xpathsat

#endif  // XPATHSAT_XPATH_PARSER_H_
