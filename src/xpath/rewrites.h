// Query rewritings used throughout the paper:
//  * inverse(p)            — Prop 3.2 / Marx & de Rijke, for containment↔sat;
//  * f(p) for N(D)         — Prop 3.3, evaluation-preserving rewriting onto
//                            normalized DTDs;
//  * recursion elimination — Prop 6.1, ↓* -> ε∪↓∪...∪↓^k under nonrecursive
//                            DTDs;
//  * X(↓,↑) -> X(↓,[])     — Thm 6.8(2) rewriting (qualifier introduction);
//  * X(↓,[]) -> X(↓,↑)     — Thm 6.6(3) rewriting (qualifier elimination,
//                            label-test-free queries).
#ifndef XPATHSAT_XPATH_REWRITES_H_
#define XPATHSAT_XPATH_REWRITES_H_

#include <memory>

#include "src/util/status.h"
#include "src/xml/dtd.h"
#include "src/xml/normalize.h"
#include "src/xpath/ast.h"

namespace xpathsat {

/// inverse(p): for any tree and nodes n, n', T |= p(n,n') iff
/// T |= inverse(p)(n',n). Defined for all fragments (sibling axes included by
/// the obvious extension). Label steps become ε[label()=l]/↑.
std::unique_ptr<PathExpr> InversePath(const PathExpr& p);

/// f(p) of Proposition 3.3: rewrites `p` so that for trees T |= D embedded in
/// T' |= N(D), T |= p iff T' |= f(p). Requires: no sibling axes.
Result<std::unique_ptr<PathExpr>> RewriteForNormalizedDtd(
    const PathExpr& p, const Dtd& original, const NormalizedDtd& norm);

/// Replaces every ↓* by ε∪↓∪...∪↓^depth_bound and every ↑* by ε∪↑∪...∪↑^k
/// (Prop 6.1; sound and complete under nonrecursive DTDs with depth ≤ k).
std::unique_ptr<PathExpr> EliminateRecursion(const PathExpr& p,
                                             int depth_bound);

/// Result of the X(↓,↑) -> X(↓,[]) rewriting.
struct UpDownRewrite {
  /// True when the query ascends above the root and is hence unsatisfiable.
  bool always_unsat = false;
  /// The equivalent X(↓,[]) query (null iff always_unsat).
  std::unique_ptr<PathExpr> path;
};

/// Thm 6.8(2): rewrites a query of X(↓,↑) (steps only: labels, ↓, ↑, ε) into
/// an equivalent (at any context node) X(↓,[]) query.
Result<UpDownRewrite> RewriteUpDownToQualifiers(const PathExpr& p);

/// Thm 6.6(3) / Benedikt et al. 2005: rewrites a label-test-free, union-free,
/// negation-free, data-free X(↓,[]) query into an equivalent X(↓,↑) query.
Result<std::unique_ptr<PathExpr>> RewriteQualifiersToUpDown(const PathExpr& p);

}  // namespace xpathsat

#endif  // XPATHSAT_XPATH_REWRITES_H_
