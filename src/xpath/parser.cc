#include "src/xpath/parser.h"

#include <cctype>
#include <vector>

namespace xpathsat {

namespace {

enum class Tok {
  kName, kString, kDot, kStar, kDStar, kCaret, kDCaret, kGt, kDGt, kLt, kDLt,
  kSlash, kPipe, kDPipe, kLBracket, kRBracket, kLParen, kRParen, kBang, kNeq,
  kEq, kAmpAmp, kAt, kEnd, kError,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { Tokenize(); }

  const Token& Peek(int ahead = 0) const {
    size_t i = cursor_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Take() {
    Token t = Peek();
    if (cursor_ < tokens_.size() - 1) ++cursor_;
    return t;
  }
  bool Consume(Tok kind) {
    if (Peek().kind == kind) {
      Take();
      return true;
    }
    return false;
  }
  size_t cursor() const { return cursor_; }
  void set_cursor(size_t c) { cursor_ = c; }
  const std::string& error() const { return error_; }

 private:
  void Push(Tok kind, std::string text, size_t pos) {
    tokens_.push_back({kind, std::move(text), pos});
  }

  void Tokenize() {
    size_t i = 0;
    while (i < text_.size()) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      size_t pos = i;
      auto two = [&](char next) {
        return i + 1 < text_.size() && text_[i + 1] == next;
      };
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '_')) {
          ++j;
        }
        Push(Tok::kName, text_.substr(i, j - i), pos);
        i = j;
        continue;
      }
      switch (c) {
        case '"': {
          size_t j = i + 1;
          while (j < text_.size() && text_[j] != '"') ++j;
          if (j >= text_.size()) {
            error_ = "unterminated string literal";
            Push(Tok::kError, "", pos);
            Push(Tok::kEnd, "", pos);
            return;
          }
          Push(Tok::kString, text_.substr(i + 1, j - i - 1), pos);
          i = j + 1;
          break;
        }
        case '.': Push(Tok::kDot, ".", pos); ++i; break;
        case '*':
          if (two('*')) { Push(Tok::kDStar, "**", pos); i += 2; }
          else { Push(Tok::kStar, "*", pos); ++i; }
          break;
        case '^':
          if (two('^')) { Push(Tok::kDCaret, "^^", pos); i += 2; }
          else { Push(Tok::kCaret, "^", pos); ++i; }
          break;
        case '>':
          if (two('>')) { Push(Tok::kDGt, ">>", pos); i += 2; }
          else { Push(Tok::kGt, ">", pos); ++i; }
          break;
        case '<':
          if (two('<')) { Push(Tok::kDLt, "<<", pos); i += 2; }
          else { Push(Tok::kLt, "<", pos); ++i; }
          break;
        case '/': Push(Tok::kSlash, "/", pos); ++i; break;
        case '|':
          if (two('|')) { Push(Tok::kDPipe, "||", pos); i += 2; }
          else { Push(Tok::kPipe, "|", pos); ++i; }
          break;
        case '[': Push(Tok::kLBracket, "[", pos); ++i; break;
        case ']': Push(Tok::kRBracket, "]", pos); ++i; break;
        case '(': Push(Tok::kLParen, "(", pos); ++i; break;
        case ')': Push(Tok::kRParen, ")", pos); ++i; break;
        case '!':
          if (two('=')) { Push(Tok::kNeq, "!=", pos); i += 2; }
          else { Push(Tok::kBang, "!", pos); ++i; }
          break;
        case '=': Push(Tok::kEq, "=", pos); ++i; break;
        case '&':
          if (two('&')) { Push(Tok::kAmpAmp, "&&", pos); i += 2; }
          else {
            error_ = "single '&'";
            Push(Tok::kError, "&", pos);
            ++i;
          }
          break;
        case '@': Push(Tok::kAt, "@", pos); ++i; break;
        default:
          error_ = std::string("unexpected character '") + c + "'";
          Push(Tok::kError, std::string(1, c), pos);
          ++i;
          break;
      }
      if (!error_.empty()) break;
    }
    Push(Tok::kEnd, "", text_.size());
  }

  const std::string& text_;
  std::vector<Token> tokens_;
  size_t cursor_ = 0;
  std::string error_;
};

using PathPtr = std::unique_ptr<PathExpr>;
using QualPtr = std::unique_ptr<Qualifier>;

class Parser {
 public:
  explicit Parser(const std::string& text) : lex_(text) {}

  Result<PathPtr> ParseFullPath() {
    if (!lex_.error().empty()) return Result<PathPtr>::Error(lex_.error());
    PathPtr p = ParseUnionPath();
    if (p == nullptr) return Result<PathPtr>::Error(error_);
    if (lex_.Peek().kind != Tok::kEnd) {
      return Result<PathPtr>::Error("trailing input at position " +
                                    std::to_string(lex_.Peek().pos));
    }
    return p;
  }

  Result<QualPtr> ParseFullQualifier() {
    if (!lex_.error().empty()) return Result<QualPtr>::Error(lex_.error());
    QualPtr q = ParseQualOr();
    if (q == nullptr) return Result<QualPtr>::Error(error_);
    if (lex_.Peek().kind != Tok::kEnd) {
      return Result<QualPtr>::Error("trailing input at position " +
                                    std::to_string(lex_.Peek().pos));
    }
    return q;
  }

 private:
  PathPtr Fail(const std::string& msg) {
    if (error_.empty()) {
      error_ = msg + " at position " + std::to_string(lex_.Peek().pos);
    }
    return nullptr;
  }
  QualPtr FailQ(const std::string& msg) {
    Fail(msg);
    return nullptr;
  }

  PathPtr ParseUnionPath() {
    PathPtr first = ParseSeqPath();
    if (!first) return nullptr;
    while (lex_.Peek().kind == Tok::kPipe) {
      lex_.Take();
      PathPtr next = ParseSeqPath();
      if (!next) return nullptr;
      first = PathExpr::Union(std::move(first), std::move(next));
    }
    return first;
  }

  PathPtr ParseSeqPath() {
    PathPtr first = ParsePostfix();
    if (!first) return nullptr;
    while (lex_.Peek().kind == Tok::kSlash) {
      // Stop before "/@": that belongs to an attribute comparison.
      if (lex_.Peek(1).kind == Tok::kAt) break;
      lex_.Take();
      PathPtr next = ParsePostfix();
      if (!next) return nullptr;
      first = PathExpr::Seq(std::move(first), std::move(next));
    }
    return first;
  }

  PathPtr ParsePostfix() {
    PathPtr p = ParsePrimary();
    if (!p) return nullptr;
    while (lex_.Peek().kind == Tok::kLBracket) {
      lex_.Take();
      QualPtr q = ParseQualOr();
      if (!q) return nullptr;
      if (!lex_.Consume(Tok::kRBracket)) return Fail("expected ']'");
      p = PathExpr::Filter(std::move(p), std::move(q));
    }
    return p;
  }

  PathPtr ParsePrimary() {
    const Token& t = lex_.Peek();
    switch (t.kind) {
      case Tok::kDot: lex_.Take(); return PathExpr::Empty();
      case Tok::kName: return PathExpr::Label(lex_.Take().text);
      case Tok::kStar: lex_.Take(); return PathExpr::Axis(PathKind::kChildAny);
      case Tok::kDStar: lex_.Take(); return PathExpr::Axis(PathKind::kDescOrSelf);
      case Tok::kCaret: lex_.Take(); return PathExpr::Axis(PathKind::kParent);
      case Tok::kDCaret: lex_.Take(); return PathExpr::Axis(PathKind::kAncOrSelf);
      case Tok::kGt: lex_.Take(); return PathExpr::Axis(PathKind::kRightSib);
      case Tok::kDGt: lex_.Take(); return PathExpr::Axis(PathKind::kRightSibStar);
      case Tok::kLt: lex_.Take(); return PathExpr::Axis(PathKind::kLeftSib);
      case Tok::kDLt: lex_.Take(); return PathExpr::Axis(PathKind::kLeftSibStar);
      case Tok::kLParen: {
        lex_.Take();
        PathPtr p = ParseUnionPath();
        if (!p) return nullptr;
        if (!lex_.Consume(Tok::kRParen)) return Fail("expected ')'");
        return p;
      }
      default:
        return Fail("expected a path step");
    }
  }

  QualPtr ParseQualOr() {
    QualPtr first = ParseQualAnd();
    if (!first) return nullptr;
    while (lex_.Peek().kind == Tok::kDPipe) {
      lex_.Take();
      QualPtr next = ParseQualAnd();
      if (!next) return nullptr;
      first = Qualifier::Or(std::move(first), std::move(next));
    }
    return first;
  }

  QualPtr ParseQualAnd() {
    QualPtr first = ParseQualNot();
    if (!first) return nullptr;
    while (lex_.Peek().kind == Tok::kAmpAmp) {
      lex_.Take();
      QualPtr next = ParseQualNot();
      if (!next) return nullptr;
      first = Qualifier::And(std::move(first), std::move(next));
    }
    return first;
  }

  QualPtr ParseQualNot() {
    if (lex_.Consume(Tok::kBang)) {
      QualPtr q = ParseQualNot();
      if (!q) return nullptr;
      return Qualifier::Not(std::move(q));
    }
    return ParseQualPrim();
  }

  QualPtr ParseQualPrim() {
    // label()=A
    if (lex_.Peek().kind == Tok::kName &&
        (lex_.Peek().text == "label" || lex_.Peek().text == "lab") &&
        lex_.Peek(1).kind == Tok::kLParen && lex_.Peek(2).kind == Tok::kRParen) {
      lex_.Take();
      lex_.Take();
      lex_.Take();
      if (!lex_.Consume(Tok::kEq)) return FailQ("expected '=' after label()");
      if (lex_.Peek().kind != Tok::kName) {
        return FailQ("expected element name after label()=");
      }
      return Qualifier::LabelTest(lex_.Take().text);
    }
    // Parenthesized qualifier vs. parenthesized path: try the qualifier
    // reading first; backtrack if the parse does not close cleanly.
    if (lex_.Peek().kind == Tok::kLParen) {
      size_t save = lex_.cursor();
      lex_.Take();
      QualPtr q = ParseQualOr();
      if (q && lex_.Consume(Tok::kRParen)) {
        Tok next = lex_.Peek().kind;
        if (next == Tok::kRBracket || next == Tok::kAmpAmp ||
            next == Tok::kDPipe || next == Tok::kRParen || next == Tok::kEnd) {
          return q;
        }
      }
      lex_.set_cursor(save);
      error_.clear();
    }
    return ParsePathQualifier();
  }

  // Parses: p | p/@a op "c" | p/@a op p2/@b | @a op ...  (with p = ε).
  QualPtr ParsePathQualifier() {
    PathPtr p;
    if (lex_.Peek().kind == Tok::kAt) {
      p = PathExpr::Empty();
    } else {
      p = ParseUnionPath();
      if (!p) return nullptr;
      if (!(lex_.Peek().kind == Tok::kSlash && lex_.Peek(1).kind == Tok::kAt)) {
        return Qualifier::Path(std::move(p));
      }
      lex_.Take();  // '/'
    }
    if (!lex_.Consume(Tok::kAt)) return FailQ("expected '@'");
    if (lex_.Peek().kind != Tok::kName) return FailQ("expected attribute name");
    std::string attr = lex_.Take().text;
    CmpOp op;
    if (lex_.Consume(Tok::kEq)) {
      op = CmpOp::kEq;
    } else if (lex_.Consume(Tok::kNeq)) {
      op = CmpOp::kNeq;
    } else {
      return FailQ("expected '=' or '!=' after attribute");
    }
    if (lex_.Peek().kind == Tok::kString) {
      std::string c = lex_.Take().text;
      return Qualifier::AttrCmpConst(std::move(p), std::move(attr), op,
                                     std::move(c));
    }
    PathPtr p2;
    if (lex_.Peek().kind == Tok::kAt) {
      p2 = PathExpr::Empty();
    } else {
      p2 = ParseUnionPath();
      if (!p2) return nullptr;
      if (!lex_.Consume(Tok::kSlash)) {
        return FailQ("expected '/@' on right-hand side of comparison");
      }
    }
    if (!lex_.Consume(Tok::kAt)) return FailQ("expected '@'");
    if (lex_.Peek().kind != Tok::kName) return FailQ("expected attribute name");
    std::string attr2 = lex_.Take().text;
    return Qualifier::AttrJoin(std::move(p), std::move(attr), op,
                               std::move(p2), std::move(attr2));
  }

  Lexer lex_;
  std::string error_;
};

}  // namespace

Result<std::unique_ptr<PathExpr>> ParsePath(const std::string& text) {
  return Parser(text).ParseFullPath();
}

Result<std::unique_ptr<Qualifier>> ParseQualifier(const std::string& text) {
  return Parser(text).ParseFullQualifier();
}

}  // namespace xpathsat
