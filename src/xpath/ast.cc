#include "src/xpath/ast.h"

namespace xpathsat {

std::unique_ptr<PathExpr> PathExpr::Empty() {
  auto p = std::make_unique<PathExpr>();
  p->kind = PathKind::kEmpty;
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Label(std::string l) {
  auto p = std::make_unique<PathExpr>();
  p->kind = PathKind::kLabel;
  p->label = std::move(l);
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Axis(PathKind kind) {
  auto p = std::make_unique<PathExpr>();
  p->kind = kind;
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Seq(std::unique_ptr<PathExpr> a,
                                        std::unique_ptr<PathExpr> b) {
  auto p = std::make_unique<PathExpr>();
  p->kind = PathKind::kSeq;
  p->lhs = std::move(a);
  p->rhs = std::move(b);
  return p;
}

std::unique_ptr<PathExpr> PathExpr::SeqAll(
    std::vector<std::unique_ptr<PathExpr>> parts) {
  std::unique_ptr<PathExpr> out = std::move(parts[0]);
  for (size_t i = 1; i < parts.size(); ++i) {
    out = Seq(std::move(out), std::move(parts[i]));
  }
  return out;
}

std::unique_ptr<PathExpr> PathExpr::Union(std::unique_ptr<PathExpr> a,
                                          std::unique_ptr<PathExpr> b) {
  auto p = std::make_unique<PathExpr>();
  p->kind = PathKind::kUnion;
  p->lhs = std::move(a);
  p->rhs = std::move(b);
  return p;
}

std::unique_ptr<PathExpr> PathExpr::UnionAll(
    std::vector<std::unique_ptr<PathExpr>> parts) {
  std::unique_ptr<PathExpr> out = std::move(parts[0]);
  for (size_t i = 1; i < parts.size(); ++i) {
    out = Union(std::move(out), std::move(parts[i]));
  }
  return out;
}

std::unique_ptr<PathExpr> PathExpr::Filter(std::unique_ptr<PathExpr> p,
                                           std::unique_ptr<Qualifier> q) {
  auto f = std::make_unique<PathExpr>();
  f->kind = PathKind::kFilter;
  f->lhs = std::move(p);
  f->qual = std::move(q);
  return f;
}

std::unique_ptr<PathExpr> PathExpr::Clone() const {
  auto p = std::make_unique<PathExpr>();
  p->kind = kind;
  p->label = label;
  if (lhs) p->lhs = lhs->Clone();
  if (rhs) p->rhs = rhs->Clone();
  if (qual) p->qual = qual->Clone();
  return p;
}

namespace {

// Wraps `s` in parentheses when `need` holds.
std::string MaybeParen(const std::string& s, bool need) {
  return need ? "(" + s + ")" : s;
}

}  // namespace

std::string PathExpr::ToString() const {
  switch (kind) {
    case PathKind::kEmpty:
      return ".";
    case PathKind::kLabel:
      return label;
    case PathKind::kChildAny:
      return "*";
    case PathKind::kDescOrSelf:
      return "**";
    case PathKind::kParent:
      return "^";
    case PathKind::kAncOrSelf:
      return "^^";
    case PathKind::kRightSib:
      return ">";
    case PathKind::kLeftSib:
      return "<";
    case PathKind::kRightSibStar:
      return ">>";
    case PathKind::kLeftSibStar:
      return "<<";
    case PathKind::kSeq:
      return MaybeParen(lhs->ToString(), lhs->kind == PathKind::kUnion) + "/" +
             MaybeParen(rhs->ToString(), rhs->kind == PathKind::kUnion);
    case PathKind::kUnion:
      return lhs->ToString() + "|" + rhs->ToString();
    case PathKind::kFilter:
      return MaybeParen(lhs->ToString(), lhs->kind == PathKind::kSeq ||
                                             lhs->kind == PathKind::kUnion) +
             "[" + qual->ToString() + "]";
  }
  return "";
}

namespace {

template <typename T>
bool PtrEquals(const std::unique_ptr<T>& a, const std::unique_ptr<T>& b) {
  if ((a == nullptr) != (b == nullptr)) return false;
  return a == nullptr || a->Equals(*b);
}

}  // namespace

bool PathExpr::Equals(const PathExpr& other) const {
  return kind == other.kind && label == other.label &&
         PtrEquals(lhs, other.lhs) && PtrEquals(rhs, other.rhs) &&
         PtrEquals(qual, other.qual);
}

int PathExpr::Size() const {
  int n = 1;
  if (lhs) n += lhs->Size();
  if (rhs) n += rhs->Size();
  if (qual) n += qual->Size();
  return n;
}

std::unique_ptr<Qualifier> Qualifier::Path(std::unique_ptr<PathExpr> p) {
  auto q = std::make_unique<Qualifier>();
  q->kind = QualKind::kPath;
  q->path = std::move(p);
  return q;
}

std::unique_ptr<Qualifier> Qualifier::LabelTest(std::string label) {
  auto q = std::make_unique<Qualifier>();
  q->kind = QualKind::kLabelTest;
  q->label = std::move(label);
  return q;
}

std::unique_ptr<Qualifier> Qualifier::AttrCmpConst(std::unique_ptr<PathExpr> p,
                                                   std::string attr, CmpOp op,
                                                   std::string constant) {
  auto q = std::make_unique<Qualifier>();
  q->kind = QualKind::kAttrCmpConst;
  q->path = std::move(p);
  q->attr = std::move(attr);
  q->op = op;
  q->constant = std::move(constant);
  return q;
}

std::unique_ptr<Qualifier> Qualifier::AttrJoin(std::unique_ptr<PathExpr> p1,
                                               std::string attr1, CmpOp op,
                                               std::unique_ptr<PathExpr> p2,
                                               std::string attr2) {
  auto q = std::make_unique<Qualifier>();
  q->kind = QualKind::kAttrJoin;
  q->path = std::move(p1);
  q->attr = std::move(attr1);
  q->op = op;
  q->path2 = std::move(p2);
  q->attr2 = std::move(attr2);
  return q;
}

std::unique_ptr<Qualifier> Qualifier::And(std::unique_ptr<Qualifier> a,
                                          std::unique_ptr<Qualifier> b) {
  auto q = std::make_unique<Qualifier>();
  q->kind = QualKind::kAnd;
  q->q1 = std::move(a);
  q->q2 = std::move(b);
  return q;
}

std::unique_ptr<Qualifier> Qualifier::AndAll(
    std::vector<std::unique_ptr<Qualifier>> parts) {
  std::unique_ptr<Qualifier> out = std::move(parts[0]);
  for (size_t i = 1; i < parts.size(); ++i) {
    out = And(std::move(out), std::move(parts[i]));
  }
  return out;
}

std::unique_ptr<Qualifier> Qualifier::Or(std::unique_ptr<Qualifier> a,
                                         std::unique_ptr<Qualifier> b) {
  auto q = std::make_unique<Qualifier>();
  q->kind = QualKind::kOr;
  q->q1 = std::move(a);
  q->q2 = std::move(b);
  return q;
}

std::unique_ptr<Qualifier> Qualifier::OrAll(
    std::vector<std::unique_ptr<Qualifier>> parts) {
  std::unique_ptr<Qualifier> out = std::move(parts[0]);
  for (size_t i = 1; i < parts.size(); ++i) {
    out = Or(std::move(out), std::move(parts[i]));
  }
  return out;
}

std::unique_ptr<Qualifier> Qualifier::Not(std::unique_ptr<Qualifier> q) {
  auto n = std::make_unique<Qualifier>();
  n->kind = QualKind::kNot;
  n->q1 = std::move(q);
  return n;
}

std::unique_ptr<Qualifier> Qualifier::Clone() const {
  auto q = std::make_unique<Qualifier>();
  q->kind = kind;
  q->label = label;
  q->attr = attr;
  q->attr2 = attr2;
  q->constant = constant;
  q->op = op;
  if (path) q->path = path->Clone();
  if (path2) q->path2 = path2->Clone();
  if (q1) q->q1 = q1->Clone();
  if (q2) q->q2 = q2->Clone();
  return q;
}

std::string Qualifier::ToString() const {
  switch (kind) {
    case QualKind::kPath:
      return MaybeParen(path->ToString(), path->kind == PathKind::kUnion);
    case QualKind::kLabelTest:
      return "label()=" + label;
    case QualKind::kAttrCmpConst:
      return MaybeParen(path->ToString(), path->kind == PathKind::kUnion) +
             "/@" + attr + (op == CmpOp::kEq ? "=" : "!=") + "\"" + constant +
             "\"";
    case QualKind::kAttrJoin:
      return MaybeParen(path->ToString(), path->kind == PathKind::kUnion) +
             "/@" + attr + (op == CmpOp::kEq ? "=" : "!=") +
             MaybeParen(path2->ToString(), path2->kind == PathKind::kUnion) +
             "/@" + attr2;
    case QualKind::kAnd:
      return MaybeParen(q1->ToString(), q1->kind == QualKind::kOr) + " && " +
             MaybeParen(q2->ToString(), q2->kind == QualKind::kOr);
    case QualKind::kOr:
      return q1->ToString() + " || " + q2->ToString();
    case QualKind::kNot:
      return "!(" + q1->ToString() + ")";
  }
  return "";
}

bool Qualifier::Equals(const Qualifier& other) const {
  return kind == other.kind && label == other.label && attr == other.attr &&
         attr2 == other.attr2 && constant == other.constant &&
         op == other.op && PtrEquals(path, other.path) &&
         PtrEquals(path2, other.path2) && PtrEquals(q1, other.q1) &&
         PtrEquals(q2, other.q2);
}

int Qualifier::Size() const {
  int n = 1;
  if (path) n += path->Size();
  if (path2) n += path2->Size();
  if (q1) n += q1->Size();
  if (q2) n += q2->Size();
  return n;
}

}  // namespace xpathsat
