// Reference evaluator implementing the binary-relation semantics of Sec. 2.2
// (and the sibling-axis extension of Sec. 7.1). Used as ground truth by the
// deciders' witness checks, the property tests, and the automaton validation.
#ifndef XPATHSAT_XPATH_EVALUATOR_H_
#define XPATHSAT_XPATH_EVALUATOR_H_

#include <vector>

#include "src/xml/tree.h"
#include "src/xpath/ast.h"

namespace xpathsat {

/// n[[p]]: all nodes reachable from any context node in `from` via `p`.
/// Returns a sorted, duplicate-free vector.
std::vector<NodeId> EvalPath(const XmlTree& tree, const PathExpr& p,
                             const std::vector<NodeId>& from);

/// T |= q(n): qualifier truth at a node.
bool EvalQualifier(const XmlTree& tree, const Qualifier& q, NodeId n);

/// T |= p at the root: r[[p]] nonempty.
bool Satisfies(const XmlTree& tree, const PathExpr& p);

/// T |= p at an arbitrary context node.
bool SatisfiesAt(const XmlTree& tree, const PathExpr& p, NodeId context);

}  // namespace xpathsat

#endif  // XPATHSAT_XPATH_EVALUATOR_H_
