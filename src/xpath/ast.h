// Abstract syntax for the XPath class X(↓,↓*,↑,↑*,←,→,←*,→*,∪,[],=,¬) of
// Sec. 2.2 and Sec. 7.1:
//
//   p ::= ε | l | ↓ | ↓* | ↑ | ↑* | → | →* | ← | ←* | p/p | p ∪ p | p[q]
//   q ::= p | lab() = A | p/@a op 'c' | p/@a op p'/@b | q∧q | q∨q | ¬q
//
// Concrete text syntax (used by the parser and printer):
//   .  label  *  **  ^  ^^  >  >>  <  <<  p/p  p|p  p[q]
//   label()=A   p/@a="c"   p/@a!=p2/@b   q&&q  q||q  !q  (...)
#ifndef XPATHSAT_XPATH_AST_H_
#define XPATHSAT_XPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace xpathsat {

struct Qualifier;

/// Comparison operator on data values: '=' or '!='.
enum class CmpOp { kEq, kNeq };

/// Path expression node kinds.
enum class PathKind {
  kEmpty,         // ε (self)
  kLabel,         // l (child with label l)
  kChildAny,      // ↓ (wildcard child)
  kDescOrSelf,    // ↓* (descendant-or-self)
  kParent,        // ↑
  kAncOrSelf,     // ↑*
  kRightSib,      // → (immediate right sibling)
  kLeftSib,       // ← (immediate left sibling)
  kRightSibStar,  // →* (self or right sibling)
  kLeftSibStar,   // ←* (self or left sibling)
  kSeq,           // p1/p2
  kUnion,         // p1 ∪ p2
  kFilter,        // p[q]
};

/// A path expression. Tree-owned via unique_ptr.
struct PathExpr {
  PathKind kind = PathKind::kEmpty;
  std::string label;               ///< kLabel only
  std::unique_ptr<PathExpr> lhs;   ///< kSeq/kUnion/kFilter
  std::unique_ptr<PathExpr> rhs;   ///< kSeq/kUnion
  std::unique_ptr<Qualifier> qual; ///< kFilter

  /// ε.
  static std::unique_ptr<PathExpr> Empty();
  /// Label step l.
  static std::unique_ptr<PathExpr> Label(std::string l);
  /// Axis step (any kind without children; kLabel via Label()).
  static std::unique_ptr<PathExpr> Axis(PathKind kind);
  /// p1/p2.
  static std::unique_ptr<PathExpr> Seq(std::unique_ptr<PathExpr> a,
                                       std::unique_ptr<PathExpr> b);
  /// Left-folded p1/p2/.../pn (n >= 1).
  static std::unique_ptr<PathExpr> SeqAll(
      std::vector<std::unique_ptr<PathExpr>> parts);
  /// p1 ∪ p2.
  static std::unique_ptr<PathExpr> Union(std::unique_ptr<PathExpr> a,
                                         std::unique_ptr<PathExpr> b);
  /// Left-folded p1 ∪ ... ∪ pn (n >= 1).
  static std::unique_ptr<PathExpr> UnionAll(
      std::vector<std::unique_ptr<PathExpr>> parts);
  /// p[q].
  static std::unique_ptr<PathExpr> Filter(std::unique_ptr<PathExpr> p,
                                          std::unique_ptr<Qualifier> q);

  /// Deep copy.
  std::unique_ptr<PathExpr> Clone() const;
  /// Concrete text syntax (parseable by ParsePath). ToString is canonical:
  /// structurally equal ASTs print identically, and parsing a printed AST is
  /// idempotent (parse(print(parse(s))) == parse(s)) — the engine's
  /// query-cache key relies on this.
  std::string ToString() const;
  /// Structural equality (same shape, labels, operators).
  bool Equals(const PathExpr& other) const;
  /// |p|: number of AST nodes (paths and qualifiers).
  int Size() const;
};

/// Qualifier node kinds.
enum class QualKind {
  kPath,          // p (some node reachable via p)
  kLabelTest,     // lab() = A
  kAttrCmpConst,  // p/@a op 'c'
  kAttrJoin,      // p/@a op p'/@b
  kAnd,
  kOr,
  kNot,
};

/// A qualifier (Boolean node test).
struct Qualifier {
  QualKind kind = QualKind::kPath;
  std::unique_ptr<PathExpr> path;   ///< kPath/kAttrCmpConst/kAttrJoin (lhs)
  std::unique_ptr<PathExpr> path2;  ///< kAttrJoin (rhs)
  std::string label;                ///< kLabelTest
  std::string attr;                 ///< kAttrCmpConst/kAttrJoin (lhs attr)
  std::string attr2;                ///< kAttrJoin (rhs attr)
  std::string constant;             ///< kAttrCmpConst
  CmpOp op = CmpOp::kEq;
  std::unique_ptr<Qualifier> q1, q2;  ///< kAnd/kOr (both), kNot (q1)

  static std::unique_ptr<Qualifier> Path(std::unique_ptr<PathExpr> p);
  static std::unique_ptr<Qualifier> LabelTest(std::string label);
  static std::unique_ptr<Qualifier> AttrCmpConst(std::unique_ptr<PathExpr> p,
                                                 std::string attr, CmpOp op,
                                                 std::string constant);
  static std::unique_ptr<Qualifier> AttrJoin(std::unique_ptr<PathExpr> p1,
                                             std::string attr1, CmpOp op,
                                             std::unique_ptr<PathExpr> p2,
                                             std::string attr2);
  static std::unique_ptr<Qualifier> And(std::unique_ptr<Qualifier> a,
                                        std::unique_ptr<Qualifier> b);
  /// Left-folded conjunction (n >= 1).
  static std::unique_ptr<Qualifier> AndAll(
      std::vector<std::unique_ptr<Qualifier>> parts);
  static std::unique_ptr<Qualifier> Or(std::unique_ptr<Qualifier> a,
                                       std::unique_ptr<Qualifier> b);
  /// Left-folded disjunction (n >= 1).
  static std::unique_ptr<Qualifier> OrAll(
      std::vector<std::unique_ptr<Qualifier>> parts);
  static std::unique_ptr<Qualifier> Not(std::unique_ptr<Qualifier> q);

  /// Deep copy.
  std::unique_ptr<Qualifier> Clone() const;
  /// Concrete text syntax.
  std::string ToString() const;
  /// Structural equality.
  bool Equals(const Qualifier& other) const;
  /// Number of AST nodes.
  int Size() const;
};

}  // namespace xpathsat

#endif  // XPATHSAT_XPATH_AST_H_
